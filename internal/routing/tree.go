// Package routing adds the workload the paper's introduction motivates —
// many-to-one data collection — on top of the MAC: a static collection
// tree per network (TMCP organises its multi-channel design around
// exactly such trees), hop-by-hop forwarding toward the root, and
// end-to-end delivery accounting.
package routing

import (
	"fmt"
	"sort"

	"nonortho/internal/phy"
)

// NoParent marks the root in a parent vector.
const NoParent = -1

// LinkMargin is the default dB margin above receiver sensitivity a link
// must clear to be considered usable for routing.
const LinkMargin = 6

// BuildTree computes a collection tree over nodes: parent[i] is the index
// each node forwards to, NoParent for the root. Links are usable when the
// predicted received power clears sensitivity by margin dB. Parents are
// chosen breadth-first by hop count, breaking ties by strongest link —
// the classic minimum-hop, best-quality heuristic of WSN collection
// protocols. Nodes that cannot reach the root yield an error.
func BuildTree(pos []phy.Position, txPower []phy.DBm, root int, model phy.PathLossModel, margin float64) ([]int, error) {
	n := len(pos)
	if len(txPower) != n {
		return nil, fmt.Errorf("routing: %d powers for %d positions", len(txPower), n)
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("routing: root %d out of range", root)
	}

	usable := func(from, to int) (phy.DBm, bool) {
		rx := phy.ReceivedPower(model, txPower[from], pos[from], pos[to])
		return rx, rx >= phy.Sensitivity+phy.DBm(margin)
	}

	parent := make([]int, n)
	hops := make([]int, n)
	for i := range parent {
		parent[i] = NoParent
		hops[i] = -1
	}
	hops[root] = 0
	frontier := []int{root}
	for len(frontier) > 0 {
		// Deterministic BFS order.
		sort.Ints(frontier)
		var next []int
		for _, u := range frontier {
			for v := 0; v < n; v++ {
				if v == u || hops[v] >= 0 && hops[v] <= hops[u] {
					continue
				}
				rx, ok := usable(v, u) // v transmits to u
				if !ok {
					continue
				}
				if hops[v] == -1 || hops[v] > hops[u]+1 {
					hops[v] = hops[u] + 1
					parent[v] = u
					next = append(next, v)
					continue
				}
				// Same hop count: keep the stronger uplink.
				if hops[v] == hops[u]+1 {
					cur, _ := usable(v, parent[v])
					if rx > cur {
						parent[v] = u
					}
				}
			}
		}
		frontier = next
	}
	for i, h := range hops {
		if h < 0 {
			return nil, fmt.Errorf("routing: node %d cannot reach root %d", i, root)
		}
	}
	return parent, nil
}

// Depths returns each node's hop distance to the root for a parent
// vector. A malformed vector (cycle or dangling parent) yields an error.
func Depths(parent []int) ([]int, error) {
	n := len(parent)
	depths := make([]int, n)
	for i := range depths {
		depths[i] = -1
	}
	var walk func(i int, seen int) (int, error)
	walk = func(i int, seen int) (int, error) {
		if depths[i] >= 0 {
			return depths[i], nil
		}
		if seen > n {
			return 0, fmt.Errorf("routing: cycle through node %d", i)
		}
		if parent[i] == NoParent {
			depths[i] = 0
			return 0, nil
		}
		p := parent[i]
		if p < 0 || p >= n {
			return 0, fmt.Errorf("routing: node %d has dangling parent %d", i, p)
		}
		d, err := walk(p, seen+1)
		if err != nil {
			return 0, err
		}
		depths[i] = d + 1
		return depths[i], nil
	}
	for i := range parent {
		if _, err := walk(i, 0); err != nil {
			return nil, err
		}
	}
	return depths, nil
}

// Validate checks a parent vector: exactly one root, no cycles, indices in
// range.
func Validate(parent []int) error {
	roots := 0
	for _, p := range parent {
		if p == NoParent {
			roots++
		}
	}
	if roots != 1 {
		return fmt.Errorf("routing: %d roots, want 1", roots)
	}
	_, err := Depths(parent)
	return err
}
