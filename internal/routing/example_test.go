package routing_test

import (
	"fmt"
	"time"

	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/routing"
	"nonortho/internal/sim"
)

// Example builds a 3-hop collection chain and reports its delivery after
// ten virtual seconds of periodic readings.
func Example() {
	k := sim.NewKernel(5)
	m := medium.New(k)

	positions := []phy.Position{{X: 0}, {X: 8}, {X: 16}, {X: 24}}
	powers := []phy.DBm{0, 0, 0, 0}

	c, err := routing.NewCollector(k, m, routing.Config{
		Freq:      2460,
		Positions: positions,
		TxPowers:  powers,
		Root:      0,
	})
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	fmt.Println("tree depth:", c.Depth())

	c.Start(200 * time.Millisecond)
	k.RunUntil(sim.FromDuration(10 * time.Second))

	fmt.Println("readings generated:", c.Generated() > 0)
	// Multi-hop chains lose some forwardings to hidden terminals and
	// per-link shadowing; ACK retries keep the bulk flowing.
	fmt.Println("delivery ratio > 0.5:", c.DeliveryRatio() > 0.5)
	// Output:
	// tree depth: 3
	// readings generated: true
	// delivery ratio > 0.5: true
}
