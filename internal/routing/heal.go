package routing

import (
	"nonortho/internal/frame"
	"nonortho/internal/phy"
)

// Self-healing: a node whose uplink keeps failing (link-level ACK
// exhaustion) abandons its parent and re-parents to the best alternative
// among nodes that were shallower than itself in the original tree. The
// depth restriction makes re-parenting cycle-free by construction: a node
// only ever forwards to original-depth-strictly-smaller nodes.

// healThreshold is the number of consecutive uplink failures that trigger
// re-parenting.
const healThreshold = 3

// EnableSelfHealing arms the failure detectors on every non-root node.
// Call before Start.
func (c *Collector) EnableSelfHealing(model phy.PathLossModel) {
	if model == nil {
		model = phy.DefaultPathLoss()
	}
	c.healModel = model
	for _, node := range c.nodes {
		if node.index == c.root {
			continue
		}
		node := node
		prevDropped := node.mac.OnDropped
		node.mac.OnDropped = func(f *frame.Frame) {
			if prevDropped != nil {
				prevDropped(f)
			}
			node.uplinkFails++
			if node.uplinkFails >= healThreshold {
				c.reparent(node)
			}
		}
		prevDelivered := node.mac.OnDelivered
		node.mac.OnDelivered = func(f *frame.Frame) {
			if prevDelivered != nil {
				prevDelivered(f)
			}
			node.uplinkFails = 0
		}
	}
}

// Reparented counts successful parent switches (instrumentation).
func (c *Collector) Reparented() int { return c.reparented }

// Parent returns node i's current parent index (NoParent for the root).
func (c *Collector) Parent(i int) int { return c.parent[i] }

// reparent picks the strongest usable uplink among nodes whose ORIGINAL
// depth is smaller than this node's, excluding the failed parent.
func (c *Collector) reparent(node *treeNode) {
	node.uplinkFails = 0
	current := c.parent[node.index]
	myDepth := c.depths[node.index]

	best := -1
	bestRx := phy.Silent
	for _, cand := range c.nodes {
		if cand.index == node.index || cand.index == current {
			continue
		}
		if c.depths[cand.index] >= myDepth {
			continue
		}
		rx := phy.ReceivedPower(c.healModel,
			node.radio.Config().TxPower, node.radio.Config().Pos, cand.radio.Config().Pos)
		if rx < phy.Sensitivity+phy.DBm(LinkMargin) {
			continue
		}
		if rx > bestRx {
			best, bestRx = cand.index, rx
		}
	}
	if best < 0 {
		return // no alternative; keep trying the current parent
	}
	c.parent[node.index] = best
	c.reparented++
}
