package frame

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := &Frame{
		Type:    TypeData,
		AckReq:  true,
		Seq:     42,
		PAN:     0x1234,
		Dst:     0x0001,
		Src:     0x0002,
		Payload: []byte("hello sensor world"),
	}
	buf, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.AckReq != f.AckReq || got.Seq != f.Seq ||
		got.PAN != f.PAN || got.Dst != f.Dst || got.Src != f.Src ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: got %+v want %+v", got, f)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(typ uint8, ackReq bool, seq uint8, pan uint16, dst, src uint16, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		in := &Frame{
			Type:    Type(typ % 4),
			AckReq:  ackReq,
			Seq:     seq,
			PAN:     pan,
			Dst:     Address(dst),
			Src:     Address(src),
			Payload: payload,
		}
		buf, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(buf)
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.AckReq == in.AckReq &&
			out.Seq == in.Seq && out.PAN == in.PAN &&
			out.Dst == in.Dst && out.Src == in.Src &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := &Frame{Type: TypeData, Seq: 1, Dst: 1, Src: 2, Payload: []byte("payload")}
	buf, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single bit must break the FCS.
	for i := 0; i < len(buf); i++ {
		for bit := 0; bit < 8; bit++ {
			corrupted := make([]byte, len(buf))
			copy(corrupted, buf)
			corrupted[i] ^= 1 << bit
			if _, err := Decode(corrupted); !errors.Is(err, ErrBadFCS) {
				t.Fatalf("bit flip at byte %d bit %d not detected: %v", i, bit, err)
			}
		}
	}
}

func TestDecodeLengthErrors(t *testing.T) {
	if _, err := Decode(make([]byte, HeaderBytes+FCSBytes-1)); !errors.Is(err, ErrTooShort) {
		t.Errorf("short buffer: got %v, want ErrTooShort", err)
	}
	if _, err := Decode(make([]byte, MaxMPDU+1)); !errors.Is(err, ErrTooLong) {
		t.Errorf("long buffer: got %v, want ErrTooLong", err)
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Encode(); !errors.Is(err, ErrPayloadLen) {
		t.Errorf("oversized payload: got %v, want ErrPayloadLen", err)
	}
}

func TestPayloadIsCopiedOnDecode(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: []byte{1, 2, 3}}
	buf, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[9] = 99 // mutate the wire buffer
	if out.Payload[0] != 1 {
		t.Error("decoded payload aliases the input buffer")
	}
}

func TestFCSKnownVectors(t *testing.T) {
	// CRC-16/KERMIT check value for "123456789" is 0x2189.
	if got := FCS([]byte("123456789")); got != 0x2189 {
		t.Errorf("FCS(123456789) = %#04x, want 0x2189", got)
	}
	if got := FCS(nil); got != 0 {
		t.Errorf("FCS(empty) = %#04x, want 0", got)
	}
}

func TestAirtime(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: make([]byte, 64)}
	// PPDU = 6 + 9 + 64 + 2 = 81 bytes; 81 × 32 µs = 2592 µs.
	if got := f.Airtime(); got != 2592*time.Microsecond {
		t.Errorf("Airtime = %v, want 2.592ms", got)
	}
	if got := AirtimeForPayload(64); got != 2592*time.Microsecond {
		t.Errorf("AirtimeForPayload(64) = %v, want 2.592ms", got)
	}
}

func TestMaxFrameAirtimeMatchesStandard(t *testing.T) {
	// A max-size PPDU (133 octets) takes 4.256 ms at 250 kbps.
	f := &Frame{Type: TypeData, Payload: make([]byte, MaxPayload)}
	if f.MPDUBytes() != MaxMPDU {
		t.Fatalf("MPDUBytes = %d, want %d", f.MPDUBytes(), MaxMPDU)
	}
	if got := f.Airtime(); got != 4256*time.Microsecond {
		t.Errorf("max frame airtime = %v, want 4.256ms", got)
	}
}

func TestPayloadBits(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: make([]byte, 64)}
	if got := f.PayloadBits(); got != 8*(9+64+2) {
		t.Errorf("PayloadBits = %d, want %d", got, 8*75)
	}
}

func TestTimingConstants(t *testing.T) {
	if BackoffPeriod != 320*time.Microsecond {
		t.Errorf("BackoffPeriod = %v", BackoffPeriod)
	}
	if CCATime != 128*time.Microsecond {
		t.Errorf("CCATime = %v", CCATime)
	}
	if TurnaroundTime != 192*time.Microsecond {
		t.Errorf("TurnaroundTime = %v", TurnaroundTime)
	}
}

func TestTypeString(t *testing.T) {
	tests := []struct {
		typ  Type
		want string
	}{
		{TypeBeacon, "beacon"},
		{TypeData, "data"},
		{TypeAck, "ack"},
		{TypeCommand, "command"},
		{Type(9), "type(9)"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.typ, got, tt.want)
		}
	}
}

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	// Fuzz-style property: arbitrary byte soup must yield an error or a
	// frame, never a panic, and any accepted buffer must re-encode to the
	// same header fields.
	f := func(buf []byte) bool {
		if len(buf) > MaxMPDU {
			buf = buf[:MaxMPDU]
		}
		got, err := Decode(buf)
		if err != nil {
			return true
		}
		// A buffer that decodes carries a valid FCS; re-encoding a data
		// frame of the same shape must round-trip the addressing.
		if got.Type != TypeData {
			return true // non-data FCFs do not re-encode identically
		}
		buf2, err := got.Encode()
		if err != nil {
			return false
		}
		got2, err := Decode(buf2)
		if err != nil {
			return false
		}
		return got2.Src == got.Src && got2.Dst == got.Dst && got2.Seq == got.Seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
