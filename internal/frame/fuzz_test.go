package frame

import (
	"bytes"
	"testing"
)

// FuzzFCS drives the encode/decode path with arbitrary frame fields and
// checks the FCS invariants: a well-formed encoding always round-trips,
// and flipping any single bit of the wire image is always detected.
func FuzzFCS(f *testing.F) {
	f.Add(uint8(1), false, uint8(0), uint16(0), uint16(1), uint16(2), []byte{}, uint16(0))
	f.Add(uint8(2), true, uint8(200), uint16(0xCAFE), uint16(0xFFFF), uint16(7), []byte("hello"), uint16(13))
	f.Add(uint8(3), false, uint8(42), uint16(1), uint16(2), uint16(3), bytes.Repeat([]byte{0xA5}, MaxPayload), uint16(900))

	f.Fuzz(func(t *testing.T, typ uint8, ackReq bool, seq uint8, pan, dst, src uint16, payload []byte, flip uint16) {
		in := &Frame{
			Type:    Type(typ & 0x7),
			AckReq:  ackReq,
			Seq:     seq,
			PAN:     pan,
			Dst:     Address(dst),
			Src:     Address(src),
			Payload: payload,
		}
		buf, err := in.Encode()
		if err != nil {
			if len(payload) > MaxPayload {
				return // oversize payloads are rejected by contract
			}
			t.Fatalf("Encode failed on a legal frame: %v", err)
		}

		out, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode rejected its own encoding: %v", err)
		}
		if out.Type != in.Type || out.AckReq != in.AckReq || out.Seq != in.Seq ||
			out.PAN != in.PAN || out.Dst != in.Dst || out.Src != in.Src ||
			!bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("round trip mismatch: in %+v out %+v", in, out)
		}

		// CRC-16 detects every single-bit error: corrupt one bit anywhere
		// in the MPDU (header, payload or the FCS itself) and decode must
		// fail with a checksum error.
		corrupted := make([]byte, len(buf))
		copy(corrupted, buf)
		bit := int(flip) % (8 * len(corrupted))
		corrupted[bit/8] ^= 1 << (bit % 8)
		if _, err := Decode(corrupted); err == nil {
			t.Fatalf("single-bit corruption at bit %d went undetected", bit)
		}
	})
}
