package frame

import "testing"

func BenchmarkEncode(b *testing.B) {
	f := &Frame{Type: TypeData, Seq: 1, Dst: 2, Src: 3, Payload: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	f := &Frame{Type: TypeData, Seq: 1, Dst: 2, Src: 3, Payload: make([]byte, 64)}
	buf, err := f.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFCS(b *testing.B) {
	data := make([]byte, 127)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		FCS(data)
	}
}
