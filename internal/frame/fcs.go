package frame

// FCS computes the IEEE 802.15.4 frame check sequence: CRC-16/KERMIT
// (ITU-T polynomial x^16 + x^12 + x^5 + 1, bit-reversed 0x8408, zero
// initial value), as specified in IEEE 802.15.4-2003 §7.2.1.8.
func FCS(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ 0x8408
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}
