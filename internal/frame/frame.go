// Package frame implements IEEE 802.15.4 MAC frames: encoding, decoding,
// the FCS checksum, and on-air timing for the 2.4 GHz 250 kbps PHY.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Timing constants of the 2.4 GHz O-QPSK PHY (IEEE 802.15.4-2003 §6.5).
const (
	// SymbolPeriod is the duration of one 4-bit symbol at 62.5 ksymbol/s.
	SymbolPeriod = 16 * time.Microsecond
	// ByteAirtime is the on-air duration of one octet (2 symbols).
	ByteAirtime = 2 * SymbolPeriod
	// BackoffPeriod is aUnitBackoffPeriod: 20 symbols.
	BackoffPeriod = 20 * SymbolPeriod
	// CCATime is the carrier-sense window: 8 symbols.
	CCATime = 8 * SymbolPeriod
	// TurnaroundTime is aTurnaroundTime (RX↔TX): 12 symbols.
	TurnaroundTime = 12 * SymbolPeriod
	// PHYOverheadBytes is preamble (4) + SFD (1) + frame length (1).
	PHYOverheadBytes = 6
	// MaxPayload is the largest MSDU this MAC carries.
	MaxPayload = MaxMPDU - HeaderBytes - FCSBytes
	// HeaderBytes is the MAC header: FCF(2) + seq(1) + dst PAN(2) +
	// dst addr(2) + src addr(2).
	HeaderBytes = 9
	// FCSBytes is the 16-bit frame check sequence.
	FCSBytes = 2
	// MaxMPDU is aMaxPHYPacketSize.
	MaxMPDU = 127
)

// Type is the 802.15.4 frame type carried in the frame control field.
type Type uint8

// Frame types (FCF bits 0-2).
const (
	TypeBeacon Type = iota
	TypeData
	TypeAck
	TypeCommand
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeBeacon:
		return "beacon"
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypeCommand:
		return "command"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Address is a 16-bit short address.
type Address uint16

// Broadcast is the 802.15.4 broadcast short address.
const Broadcast Address = 0xFFFF

// Frame is a decoded MAC frame.
type Frame struct {
	Type    Type
	AckReq  bool
	Seq     uint8
	PAN     uint16
	Dst     Address
	Src     Address
	Payload []byte
}

// Errors returned by Decode.
var (
	ErrTooShort   = errors.New("frame: buffer shorter than header+FCS")
	ErrTooLong    = errors.New("frame: MPDU exceeds aMaxPHYPacketSize")
	ErrBadFCS     = errors.New("frame: FCS mismatch")
	ErrPayloadLen = errors.New("frame: payload exceeds MaxPayload")
)

// MPDUBytes returns the encoded length of the frame in octets.
func (f *Frame) MPDUBytes() int { return HeaderBytes + len(f.Payload) + FCSBytes }

// PPDUBytes returns the full on-air length including the PHY preamble, SFD
// and length field.
func (f *Frame) PPDUBytes() int { return PHYOverheadBytes + f.MPDUBytes() }

// Airtime returns the on-air transmission duration of the frame.
func (f *Frame) Airtime() time.Duration {
	return time.Duration(f.PPDUBytes()) * ByteAirtime
}

// AirtimeForPayload computes the on-air duration of a data frame carrying
// n payload bytes, without building the frame.
func AirtimeForPayload(n int) time.Duration {
	return time.Duration(PHYOverheadBytes+HeaderBytes+n+FCSBytes) * ByteAirtime
}

// PayloadBits returns the number of MPDU bits, the unit the PER model uses.
func (f *Frame) PayloadBits() int { return 8 * f.MPDUBytes() }

// Encode serialises the frame to wire format (MPDU only; the PHY preamble
// is timing, not data). The FCS is computed over header and payload.
func (f *Frame) Encode() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadLen, len(f.Payload), MaxPayload)
	}
	buf := make([]byte, f.MPDUBytes())
	fcf := uint16(f.Type) & 0x7
	if f.AckReq {
		fcf |= 1 << 5
	}
	// Short addressing for both dst (bits 10-11 = 2) and src (bits 14-15 = 2).
	fcf |= 2 << 10
	fcf |= 2 << 14
	binary.LittleEndian.PutUint16(buf[0:2], fcf)
	buf[2] = f.Seq
	binary.LittleEndian.PutUint16(buf[3:5], f.PAN)
	binary.LittleEndian.PutUint16(buf[5:7], uint16(f.Dst))
	binary.LittleEndian.PutUint16(buf[7:9], uint16(f.Src))
	copy(buf[9:], f.Payload)
	fcs := FCS(buf[:len(buf)-FCSBytes])
	binary.LittleEndian.PutUint16(buf[len(buf)-FCSBytes:], fcs)
	return buf, nil
}

// Decode parses wire format back into a Frame, verifying the FCS.
func Decode(buf []byte) (*Frame, error) {
	if len(buf) < HeaderBytes+FCSBytes {
		return nil, ErrTooShort
	}
	if len(buf) > MaxMPDU {
		return nil, ErrTooLong
	}
	want := binary.LittleEndian.Uint16(buf[len(buf)-FCSBytes:])
	if got := FCS(buf[:len(buf)-FCSBytes]); got != want {
		return nil, fmt.Errorf("%w: got %#04x want %#04x", ErrBadFCS, got, want)
	}
	fcf := binary.LittleEndian.Uint16(buf[0:2])
	f := &Frame{
		Type:   Type(fcf & 0x7),
		AckReq: fcf&(1<<5) != 0,
		Seq:    buf[2],
		PAN:    binary.LittleEndian.Uint16(buf[3:5]),
		Dst:    Address(binary.LittleEndian.Uint16(buf[5:7])),
		Src:    Address(binary.LittleEndian.Uint16(buf[7:9])),
	}
	payload := buf[9 : len(buf)-FCSBytes]
	if len(payload) > 0 {
		f.Payload = make([]byte, len(payload))
		copy(f.Payload, payload)
	}
	return f, nil
}
