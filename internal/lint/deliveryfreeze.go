package lint

import (
	"go/ast"
	"go/token"
)

// Deliveryfreeze guards the medium's frozen-delivery-set contract. An
// event's delivery set is computed up front (deliverySet / getIDScratch)
// precisely so that handlers running mid-fan-out can retune, detach or
// re-file interests without changing who the in-flight event reaches —
// the snapshot is the determinism boundary. That only holds if the code
// BETWEEN acquiring the frozen set and releasing it (putIDScratch) never
// edits the interest buckets itself: a mutation there would be observed
// by the very fan-out it sits inside on some code paths and not others,
// reintroducing iteration-order and timing hazards the freeze exists to
// remove. Handlers invoked dynamically during the loop are exempt (their
// edits land in the buckets, not the frozen slice); this analyzer flags
// only lexical mutations in the freezing function itself.
//
// Flagged between an acquire (x := m.deliverySet(...) / m.getIDScratch())
// and the matching m.putIDScratch(x) in the same function:
//   - calls to the bucket mutators SetInterest, addInterest,
//     dropInterest, insertID, removeID;
//   - assignments (including append self-assignments) whose target is an
//     allIDs, bands or bandsTough field — the raw bucket storage.
var Deliveryfreeze = &Analyzer{
	Name: "deliveryfreeze",
	Doc: "flag interest-bucket mutations between a frozen delivery-set acquire " +
		"(deliverySet/getIDScratch) and its putIDScratch release",
	Run: runDeliveryfreeze,
}

// bucketMutators are callee names that re-file listeners in the interest
// index's delivery buckets.
var bucketMutators = map[string]bool{
	"SetInterest": true, "addInterest": true, "dropInterest": true,
	"insertID": true, "removeID": true,
}

// bucketFields are the raw bucket storage fields of the interest index.
var bucketFields = map[string]bool{
	"allIDs": true, "bands": true, "bandsTough": true,
}

func runDeliveryfreeze(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFrozenWindows(pass, fn.Body)
		}
	}
	return nil
}

// checkFrozenWindows locates the lexical window between the first frozen-
// set acquire and the last putIDScratch release in the function body and
// reports bucket mutations positioned inside it.
func checkFrozenWindows(pass *Pass, body *ast.BlockStmt) {
	acquire, release := token.NoPos, token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(call) {
		case "deliverySet", "getIDScratch":
			if !acquire.IsValid() || call.Pos() < acquire {
				acquire = call.Pos()
			}
		case "putIDScratch":
			if call.Pos() > release {
				release = call.Pos()
			}
		}
		return true
	})
	if !acquire.IsValid() || !release.IsValid() || release <= acquire {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() <= acquire || n.Pos() >= release {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := calleeName(n); bucketMutators[name] {
				pass.Reportf(n.Pos(),
					"%s between deliverySet/getIDScratch and putIDScratch: the delivery set is frozen — re-filing interest buckets mid-fan-out makes delivery depend on traversal timing; mutate before the freeze or after the release",
					name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if field := bucketFieldOf(lhs); field != "" {
					pass.Reportf(n.Pos(),
						"write to bucket field %s between deliverySet/getIDScratch and putIDScratch: the delivery set is frozen — mutate before the freeze or after the release",
						field)
				}
			}
		}
		return true
	})
}

// calleeName extracts the bare method/function name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// bucketFieldOf reports the bucket field name an assignment target
// resolves to, or "" — matches m.allIDs, m.bands[f], m.bandsTough[f].
func bucketFieldOf(lhs ast.Expr) string {
	e := ast.Unparen(lhs)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !bucketFields[sel.Sel.Name] {
		return ""
	}
	return sel.Sel.Name
}
