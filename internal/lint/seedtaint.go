package lint

import (
	"go/ast"
	"strings"
)

// Seedtaint requires every random generator constructed in simulation
// code to be visibly seeded from the cell's (configuration, seed) tuple.
// Detsource already bans the global math/rand state; this analyzer closes
// the remaining hole — a *seeded* generator whose seed is a constant, a
// loop counter, or anything else unrelated to the cell identity. Such a
// generator is deterministic but wrong: every cell of a sweep draws the
// same sequence regardless of its seed, correlating results that the
// paper's tables assume independent, and a replay under a different root
// seed silently reproduces the stale stream.
//
// Interprocedurally (when the whole module is loaded): a helper that
// bakes an unseeded constructor into its body is flagged at every
// sim-package call site, and a helper that builds a generator from its
// own parameters obliges every sim-package caller to pass a visibly
// seed-derived argument.
//
// Flagged inside simulation packages (see isSimPackage), test files
// exempt: calls to rand.NewSource / rand.NewPCG / rand.NewChaCha8
// (math/rand and math/rand/v2) and to the kernel's own sim.NewRNG whose
// arguments contain no seed-derived input — no identifier, field, or
// callee whose name mentions "seed" (Seed, seed, streamSeed, opts.Seed,
// k.seed, ...). Derivations like opts.Seed+int64(i) pass: the taint only
// has to appear somewhere in the expression.
var Seedtaint = &Analyzer{
	Name: "seedtaint",
	Doc: "require RNG constructors in simulation packages to be seeded from the " +
		"cell's (config, seed) tuple, not constants or ambient values",
	Run: runSeedtaint,
}

// seededSourceCtors are the explicitly seeded math/rand[/v2] constructors
// whose seed argument must carry the cell's taint. rand.New and NewZipf
// wrap an existing source, so the taint is checked where that source was
// built.
var seededSourceCtors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// isSimKernelPkg matches the simulation kernel package in the real tree
// (nonortho/internal/sim) and in fixture layouts (internal/sim).
func isSimKernelPkg(path string) bool {
	return path == "internal/sim" || strings.HasSuffix(path, "/internal/sim")
}

func runSeedtaint(pass *Pass) error {
	if !isSimPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			var what string
			switch {
			case isRandPkg(obj.Pkg().Path()) && seededSourceCtors[obj.Name()]:
				what = "rand." + obj.Name()
			case obj.Name() == "NewRNG" && isSimKernelPkg(obj.Pkg().Path()):
				what = "sim.NewRNG"
			default:
				return true
			}
			if !anySeedDerived(call.Args) {
				pass.Reportf(call.Pos(),
					"%s seeded by an expression with no seed-derived input; derive every generator from the cell's (config, seed) tuple or a named kernel stream (sim.Kernel.Stream)",
					what)
			}
			return true
		})
	}
	reportTransitiveSources(pass, map[srcKind]bool{srcUnseededCtor: true}, true)
	return nil
}

// anySeedDerived reports whether any argument contains an identifier
// whose name mentions "seed" — a variable, field selection, or callee
// like seed, opts.Seed, k.seed, streamSeed(...). Selector fields and call
// names are themselves identifiers, so one walk over idents covers every
// shape the taint can take.
func anySeedDerived(args []ast.Expr) bool {
	for _, a := range args {
		found := false
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok &&
				strings.Contains(strings.ToLower(id.Name), "seed") {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
