package lint

// All returns the full dcnlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Confinedgo,
		Dbmunits,
		Deliveryfreeze,
		Detsource,
		Leasepair,
		Maporder,
		Resetcomplete,
		Seedtaint,
		Snapfreeze,
	}
}

// ByName resolves an analyzer by its directive name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
