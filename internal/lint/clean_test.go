package lint_test

import (
	"testing"
	"time"

	"nonortho/internal/lint"
)

// lintGateCeiling bounds the wall-clock cost of the whole-module lint
// gate. The interprocedural engine is a fixed point over the call
// graph; if a change makes it super-linear (a summary that never
// converges, an indirect-dispatch explosion), this fails long before
// CI times out.
const lintGateCeiling = 90 * time.Second

// TestRepositoryIsClean runs the full suite over the whole module —
// the `go run ./cmd/dcnlint ./...` gate as a test, so `go test ./...`
// alone already enforces the determinism invariants. Skipped under
// -short: it type-checks the entire repository (a few seconds).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped under -short")
	}
	start := time.Now()
	loader, err := lint.NewModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern expansion looks broken", len(pkgs))
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if elapsed := time.Since(start); elapsed > lintGateCeiling {
		t.Errorf("lint gate took %v, over the %v ceiling; the engine has stopped scaling",
			elapsed, lintGateCeiling)
	}
}
