package lint_test

import (
	"testing"

	"nonortho/internal/lint"
)

// TestRepositoryIsClean runs the full suite over the whole module —
// the `go run ./cmd/dcnlint ./...` gate as a test, so `go test ./...`
// alone already enforces the determinism invariants. Skipped under
// -short: it type-checks the entire repository (a few seconds).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped under -short")
	}
	loader, err := lint.NewModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern expansion looks broken", len(pkgs))
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
