package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Dbmunits is a taint-style check for the classic log/linear-domain bug:
// adding or subtracting a dBm (logarithmic) quantity and a milliwatt
// (linear) quantity as if they shared a unit. Power sums in the medium
// are performed in milliwatts and converted at the edges
// (phy.Milliwatts / phy.FromMilliwatts); an expression that mixes the
// two domains in one +/- is wrong in a way the type system cannot see
// when both sides are float64.
//
// An operand's domain is inferred from its static type (phy.DBm and any
// named type whose name contains "dbm" is logarithmic) and, for plain
// floats, from the repository's naming discipline: *Dbm/*DBm/
// *dbm-suffixed names are dBm; *MW/*Mw/*mw-suffixed and *Milliwatt*
// names are linear. Conversions (float64(x), phy.DBm(x)) propagate the
// taint of their operand when the target type is unit-less. When the
// whole module is loaded, a neutral-named helper whose return
// expressions carry a unit taints arithmetic in its callers through a
// fixed-point return-unit summary.
var Dbmunits = &Analyzer{
	Name: "dbmunits",
	Doc: "flag +/- arithmetic mixing dBm-domain (logarithmic) and mW-domain (linear) " +
		"operands; convert explicitly via phy.Milliwatts / phy.FromMilliwatts",
	Run: runDbmunits,
}

type unit int

const (
	unitUnknown unit = iota
	unitDBm
	unitMW
)

func (u unit) String() string {
	switch u {
	case unitDBm:
		return "dBm"
	case unitMW:
		return "mW"
	}
	return "unknown"
}

func runDbmunits(pass *Pass) error {
	env := unitEnv{info: pass.TypesInfo}
	if pass.Module != nil {
		env.ret = pass.Module.unitSummaries()
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.ADD || n.Op == token.SUB {
					reportMix(pass, n.OpPos, n.Op.String(),
						env.exprUnit(n.X), env.exprUnit(n.Y), n.X, n.Y)
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
					reportMix(pass, n.TokPos, n.Tok.String(),
						env.exprUnit(n.Lhs[0]), env.exprUnit(n.Rhs[0]), n.Lhs[0], n.Rhs[0])
				}
			}
			return true
		})
	}
	return nil
}

func reportMix(pass *Pass, pos token.Pos, op string, ux, uy unit, x, y ast.Expr) {
	if ux == unitUnknown || uy == unitUnknown || ux == uy {
		return
	}
	pass.Reportf(pos,
		"%s mixes %s operand %s (%s domain) with %s (%s domain); convert via phy.Milliwatts / phy.FromMilliwatts before combining",
		op, ux, exprString(x), domain(ux), exprString(y), domain(uy))
}

func domain(u unit) string {
	if u == unitDBm {
		return "logarithmic"
	}
	return "linear"
}

// unitEnv is the classification context: the package's type info plus,
// when the whole module is loaded, the return-unit summaries of
// module-local helpers (see Module.unitSummaries).
type unitEnv struct {
	info *types.Info
	ret  map[string]unit
}

// exprUnit classifies an expression's power domain.
func (env unitEnv) exprUnit(e ast.Expr) unit {
	e = ast.Unparen(e)
	// A named type carrying the unit wins over any identifier spelling.
	if tv, ok := env.info.Types[e]; ok && tv.Type != nil {
		if u := typeUnit(tv.Type); u != unitUnknown {
			return u
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		return nameUnit(x.Name)
	case *ast.SelectorExpr:
		return nameUnit(x.Sel.Name)
	case *ast.IndexExpr:
		return env.exprUnit(x.X)
	case *ast.UnaryExpr:
		return env.exprUnit(x.X)
	case *ast.BinaryExpr:
		// Same-domain sums keep their domain; dBm-dBm is a dB offset,
		// which carries no absolute unit.
		ux, uy := env.exprUnit(x.X), env.exprUnit(x.Y)
		if ux == uy && (x.Op == token.ADD || (x.Op == token.SUB && ux == unitMW)) {
			return ux
		}
	case *ast.CallExpr:
		// Conversions to a unit-less type (float64(sigDbm)) and calls are
		// classified by the callee name (Milliwatts() -> mW); a conversion
		// to a unit-bearing type was already caught by typeUnit above.
		if fn := ast.Unparen(x.Fun); fn != nil {
			var name string
			switch f := fn.(type) {
			case *ast.Ident:
				name = f.Name
			case *ast.SelectorExpr:
				name = f.Sel.Name
			}
			if u := nameUnit(name); u != unitUnknown {
				return u
			}
		}
		// A pure conversion propagates its operand's taint.
		if tv, ok := env.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return env.exprUnit(x.Args[0])
		}
		// A neutral-named helper is classified by what it returns.
		if env.ret != nil {
			if fn, ok := calleeObj(env.info, x).(*types.Func); ok {
				if u := env.ret[fn.FullName()]; u != unitUnknown {
					return u
				}
			}
		}
	}
	return unitUnknown
}

// typeUnit reads the domain off a named type: phy.DBm (and anything
// spelled like it) is logarithmic. No linear power type exists in the
// repository — mW values are plain float64 — so only names carry mW.
func typeUnit(t types.Type) unit {
	named, ok := t.(*types.Named)
	if !ok {
		return unitUnknown
	}
	return nameUnit(named.Obj().Name())
}

// nameUnit classifies an identifier by the repository's unit-suffix
// naming discipline.
func nameUnit(name string) unit {
	lower := strings.ToLower(name)
	switch {
	case strings.Contains(lower, "dbm"):
		return unitDBm
	case strings.Contains(lower, "milliw"):
		return unitMW
	case strings.HasSuffix(name, "MW"), strings.HasSuffix(name, "Mw"),
		strings.HasSuffix(lower, "_mw"), lower == "mw":
		return unitMW
	}
	return unitUnknown
}
