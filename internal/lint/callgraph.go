package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Module is the whole-program view behind the interprocedural analyzers:
// a conservative call graph over every package handed to RunAnalyzers,
// plus lazily computed per-function summaries (nondeterminism sources
// reached, seed-parameter obligations, dBm/mW return units, lease
// hand-offs). Static calls are resolved exactly through go/types;
// interface and function-value calls are over-approximated by signature,
// pruned to the caller's import closure. The graph only spans packages
// that were loaded for analysis — a single-package dcnlint run degrades
// to the intra-procedural checks, which is why the gate runs `./...`.
type Module struct {
	funcs map[string]*modFunc // types.Func.FullName() -> decl
	// order lists the functions sorted by id. Every whole-module walk
	// iterates it instead of ranging over funcs, so index candidate
	// order, summary chains and diagnostics are deterministic.
	order []*modFunc
	// sigIndex and methodIndex over-approximate indirect dispatch:
	// package-level functions by signature (function-value calls) and
	// methods by name|signature (interface calls). Test-file functions
	// are excluded — they cannot be callees of non-test code.
	sigIndex    map[string][]*modFunc
	methodIndex map[string][]*modFunc
	closures    map[*types.Package]map[string]bool

	src         map[*modFunc]*sourceSummary // lazily built by sourceSummaries
	units       map[string]unit             // lazily built by unitSummaries
	leaseReturn map[string]bool             // lazily built by leaseReturners
}

// modFunc is one function declaration in the module. FuncLit bodies are
// attributed to their enclosing declaration: a closure's calls count as
// the declaring function's calls.
type modFunc struct {
	id     string // types.Func.FullName(): stable across package variants
	name   string // display name for printed call paths (pkg.Func)
	decl   *ast.FuncDecl
	pkg    *Package
	fn     *types.Func
	inTest bool
	edges  []callEdge

	params map[types.Object]bool // lazily built by paramObjs
}

// callEdge is one call expression and its module-local callee
// candidates: exactly one for a statically resolved call, possibly many
// for an indirect (interface or function-value) call.
type callEdge struct {
	call     *ast.CallExpr
	callees  []*modFunc
	indirect bool
}

// newModule builds the call graph over the loaded packages.
func newModule(pkgs []*Package) *Module {
	m := &Module{
		funcs:       map[string]*modFunc{},
		sigIndex:    map[string][]*modFunc{},
		methodIndex: map[string][]*modFunc{},
		closures:    map[*types.Package]map[string]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			inTest := strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := fn.FullName()
				if _, dup := m.funcs[id]; dup {
					continue
				}
				m.funcs[id] = &modFunc{
					id: id, name: displayName(fn), decl: fd,
					pkg: pkg, fn: fn, inTest: inTest,
				}
			}
		}
	}
	for id := range m.funcs {
		m.order = append(m.order, m.funcs[id])
	}
	sort.Slice(m.order, func(i, j int) bool { return m.order[i].id < m.order[j].id })
	for _, mf := range m.order {
		if mf.inTest {
			continue
		}
		sig := mf.fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			k := sigKey(sig)
			m.sigIndex[k] = append(m.sigIndex[k], mf)
		} else {
			k := mf.fn.Name() + "|" + sigKey(sig)
			m.methodIndex[k] = append(m.methodIndex[k], mf)
		}
	}
	for _, mf := range m.order {
		m.buildEdges(mf)
	}
	return m
}

// funcOf resolves a declaration in a pass back to its module node.
func (m *Module) funcOf(info *types.Info, fd *ast.FuncDecl) *modFunc {
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		return m.funcs[fn.FullName()]
	}
	return nil
}

// buildEdges records every call in the function body (closures
// included) that can reach module-local code.
func (m *Module) buildEdges(mf *modFunc) {
	info := mf.pkg.Info
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch obj := calleeObj(info, call).(type) {
		case *types.Func:
			sig, ok := obj.Type().(*types.Signature)
			if !ok {
				return true
			}
			if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
				m.addIndirect(mf, call, m.methodIndex[obj.Name()+"|"+sigKey(sig)])
			} else if callee := m.funcs[obj.FullName()]; callee != nil {
				mf.edges = append(mf.edges, callEdge{call: call, callees: []*modFunc{callee}})
			}
		case *types.Builtin, *types.TypeName:
			// append/len/... and conversions spelled as Ident calls.
		case nil:
			// No single object: a conversion to a type expression, a call
			// of a function-typed result, or a FuncLit invoked in place
			// (whose body is already attributed to this function).
			tv, ok := info.Types[call.Fun]
			if !ok || tv.IsType() || tv.Type == nil {
				return true
			}
			if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
				return true
			}
			if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
				m.addIndirect(mf, call, m.sigIndex[sigKey(sig)])
			}
		default:
			// A func-typed variable, field, or parameter.
			if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
				m.addIndirect(mf, call, m.sigIndex[sigKey(sig)])
			}
		}
		return true
	})
}

// addIndirect records an over-approximated dispatch edge, pruned to
// candidates the caller's package could actually reach through imports.
func (m *Module) addIndirect(mf *modFunc, call *ast.CallExpr, cands []*modFunc) {
	if len(cands) == 0 {
		return
	}
	allowed := m.closure(mf.pkg.Types)
	var kept []*modFunc
	for _, c := range cands {
		if c.pkg == mf.pkg || allowed[c.pkg.Path] {
			kept = append(kept, c)
		}
	}
	if len(kept) > 0 {
		mf.edges = append(mf.edges, callEdge{call: call, callees: kept, indirect: true})
	}
}

// closure returns the set of import paths reachable from p, p included.
func (m *Module) closure(p *types.Package) map[string]bool {
	if s, ok := m.closures[p]; ok {
		return s
	}
	s := map[string]bool{}
	var walk func(q *types.Package)
	walk = func(q *types.Package) {
		if s[q.Path()] {
			return
		}
		s[q.Path()] = true
		for _, imp := range q.Imports() {
			walk(imp)
		}
	}
	walk(p)
	m.closures[p] = s
	return s
}

// sigKey renders a signature (receiver excluded) to a canonical string,
// the key indirect dispatch is over-approximated by.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	tuple := func(t *types.Tuple) {
		b.WriteByte('(')
		for i := 0; i < t.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(types.TypeString(t.At(i).Type(), nil))
		}
		b.WriteByte(')')
	}
	tuple(sig.Params())
	if sig.Variadic() {
		b.WriteString("...")
	}
	tuple(sig.Results())
	return b.String()
}

// displayName is the short form used in printed call paths: pkg.Func or
// pkg.Type.Method.
func displayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// paramObjs is the set of parameter and receiver objects of the
// declaration, including the parameters of any closure inside it — the
// identifiers through which a caller-supplied value can enter the body.
func (mf *modFunc) paramObjs() map[types.Object]bool {
	if mf.params != nil {
		return mf.params
	}
	mf.params = map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := mf.pkg.Info.Defs[name]; obj != nil {
					mf.params[obj] = true
				}
			}
		}
	}
	add(mf.decl.Recv)
	add(mf.decl.Type.Params)
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			add(lit.Type.Params)
		}
		return true
	})
	return mf.params
}

// exprsMention reports whether any expression uses one of the objects.
func exprsMention(info *types.Info, exprs []ast.Expr, objs map[types.Object]bool) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && objs[info.ObjectOf(id)] {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// internalSegment returns the path segment after the first "internal",
// or "" — the key both the real tree and fixture layouts scope by.
func internalSegment(path string) string {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) {
			return segs[i+1]
		}
	}
	return ""
}

func isArenaPkg(path string) bool    { return internalSegment(path) == "arena" }
func isTestbedPkg(path string) bool  { return internalSegment(path) == "testbed" }
func isTopologyPkg(path string) bool { return internalSegment(path) == "topology" }

// isQuarantinedPkg reports whether the package is one of the
// deliberately nondeterministic internal packages (see nonSimInternal).
// Summaries never propagate facts out of them: internal/watchdog reading
// the wall clock is its charter, not a finding at its call sites.
func isQuarantinedPkg(path string) bool {
	seg := internalSegment(path)
	return seg != "" && nonSimInternal[seg]
}
