package lint_test

import (
	"testing"

	"nonortho/internal/lint"
)

// BenchmarkLintModule measures the full dcnlint gate — loading and
// type-checking the whole module, building the interprocedural call
// graph and summaries, and running every analyzer — so the cost of the
// gate stays visible in the committed bench artifacts as the engine
// grows.
func BenchmarkLintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewModuleLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		diags, err := lint.RunAnalyzers(pkgs, lint.All())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repository not clean: %v", diags[0])
		}
	}
}
