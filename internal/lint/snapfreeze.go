package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Snapfreeze enforces topology.Snapshot immutability, the invariant the
// whole spatial tier leans on: snapshots are shared across cells and
// workers without copies, and the certified far-pair loss floors are
// only sound if nothing mutates a published snapshot. Two rules:
//
//   - Inside internal/topology, Snapshot fields may be written only in
//     constructors (functions whose results include *Snapshot); any
//     other function writing a field — directly or through a local
//     alias of a field slice — mutates a published snapshot.
//   - Everywhere, the CSR row views returned by NearRow are frozen:
//     writing an element, using the row as a copy destination, or
//     appending to it (which may write in place) is flagged, through
//     bare and re-sliced aliases. Copying OUT of a row and Networks()
//     (a deep copy) stay legal.
//
// Test files are exempt: oracle tests rebuild and perturb snapshots
// deliberately.
var Snapfreeze = &Analyzer{
	Name: "snapfreeze",
	Doc: "forbid writes to topology.Snapshot fields outside constructors and " +
		"writes through NearRow CSR row aliases; published snapshots are immutable",
	Run: runSnapfreeze,
}

func runSnapfreeze(pass *Pass) error {
	inTopo := isTopologyPkg(pass.Path)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inTopo {
				if returnsSnapshot(pass.TypesInfo, fd) {
					continue // constructor: field writes are legal
				}
				checkSnapshotWrites(pass, fd)
			}
			checkRowAliases(pass, fd)
		}
	}
	return nil
}

// returnsSnapshot reports whether any declared result is a (pointer to)
// Snapshot of the package under analysis.
func returnsSnapshot(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if isSnapshotType(tv.Type) {
			return true
		}
	}
	return false
}

func isSnapshotType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Snapshot" && n.Obj().Pkg() != nil &&
		isTopologyPkg(n.Obj().Pkg().Path())
}

// checkSnapshotWrites flags non-constructor writes to Snapshot fields
// inside the topology package: s.field = ..., s.field[i] = ...,
// s.n++, compound assignments, and writes through local aliases of
// field slices.
func checkSnapshotWrites(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	aliases := map[types.Object]bool{}
	// isFrozen reports whether the lvalue bottoms out in a Snapshot
	// field or a tracked alias of one.
	var isFrozen func(e ast.Expr) bool
	isFrozen = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return aliases[info.ObjectOf(x)]
		case *ast.SelectorExpr:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil && isSnapshotType(tv.Type) {
				return true
			}
			return isFrozen(x.X)
		case *ast.IndexExpr:
			return isFrozen(x.X)
		case *ast.SliceExpr:
			return isFrozen(x.X)
		case *ast.StarExpr:
			return isFrozen(x.X)
		}
		return false
	}
	report := func(pos token.Pos) {
		pass.reportSink(pos, "Snapshot", nil,
			"write to topology.Snapshot field outside a constructor mutates a published snapshot; snapshots are immutable once returned — build a new one")
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if isFrozen(lhs) {
					report(lhs.Pos())
					continue
				}
				// Track local aliases of snapshot field slices so
				// `rows := s.nearLoss; rows[0] = x` is still a write.
				// Only slice-typed values alias the underlying array — a
				// scalar copied out of a field is just a value.
				if (n.Tok == token.DEFINE || n.Tok == token.ASSIGN) &&
					i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" &&
						isFrozen(n.Rhs[i]) && isSliceExpr(info, n.Rhs[i]) {
						if obj := info.ObjectOf(id); obj != nil {
							aliases[obj] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if isFrozen(n.X) {
				report(n.X.Pos())
			}
		case *ast.CallExpr:
			if name := builtinName(info, n); (name == "append" || name == "copy") &&
				len(n.Args) > 0 && isFrozen(n.Args[0]) {
				report(n.Pos())
			}
		}
		return true
	})
}

// isSliceExpr reports whether the expression's type is a slice.
func isSliceExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// builtinName returns the name of a builtin callee, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	if b, ok := calleeObj(info, call).(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// checkRowAliases flags writes through the frozen views NearRow returns,
// in any package: index writes, re-sliced aliases, append, and copy
// with the row as destination.
func checkRowAliases(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	rows := map[types.Object]bool{}
	// rooted reports whether the expression bottoms out in a tracked
	// row variable (through indexing, slicing, parens).
	var rooted func(e ast.Expr) bool
	rooted = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return rows[info.ObjectOf(x)]
		case *ast.IndexExpr:
			return rooted(x.X)
		case *ast.SliceExpr:
			return rooted(x.X)
		}
		return false
	}
	report := func(pos token.Pos, what string) {
		pass.reportSink(pos, "NearRow", nil,
			"%s a NearRow CSR row mutates the shared topology.Snapshot it views; copy the row before modifying it", what)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// New rows: ids, loss := s.NearRow(i). Aliases: a := ids,
			// sub := loss[1:].
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isNearRowCall(info, call) {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							if obj := info.ObjectOf(id); obj != nil {
								rows[obj] = true
							}
						}
					}
					return true
				}
			}
			for i, lhs := range n.Lhs {
				if rooted(lhs) {
					report(lhs.Pos(), "writing into")
					continue
				}
				// Aliases must be slice-typed: an element read out of a
				// row (`v := loss[i]`) is a value, not a view.
				if len(n.Lhs) == len(n.Rhs) && i < len(n.Rhs) &&
					rooted(n.Rhs[i]) && isSliceExpr(info, n.Rhs[i]) {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.ObjectOf(id); obj != nil {
							rows[obj] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if rooted(n.X) {
				report(n.X.Pos(), "writing into")
			}
		case *ast.CallExpr:
			switch builtinName(info, n) {
			case "append":
				if len(n.Args) > 0 && rooted(n.Args[0]) {
					report(n.Pos(), "append to")
				}
			case "copy":
				if len(n.Args) > 0 && rooted(n.Args[0]) {
					report(n.Pos(), "copy into")
				}
			}
		}
		return true
	})
}

// isNearRowCall matches any method named NearRow — the Snapshot
// accessor and the FarFieldProvider interface it satisfies.
func isNearRowCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || fn.Name() != "NearRow" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
