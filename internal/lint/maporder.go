package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags range loops over maps whose body does order-dependent
// work. Go randomizes map iteration order, so accumulating floats,
// growing an outer slice, or emitting events from inside a map range
// produces run-to-run different bits — exactly the hazard the medium's
// orderedActive scratch sort exists to avoid. Order-independent bodies
// (delete, per-entry field writes, max/count scans) are not flagged.
//
// Flagged inside any map-range body (all packages, non-test files):
//   - floating-point accumulation (+=, -=, *=, /=, or x = x + ...) into
//     a variable declared outside the loop: float addition does not
//     commute in rounding, so the total depends on visit order;
//   - append to a slice declared outside the loop, unless the slice is
//     sorted immediately after the loop (the collect-then-sort idiom of
//     mergeWide) — otherwise the slice's element order is random;
//   - calls that emit simulation events or schedule callbacks (OnAir,
//     OffAir, Emit, Transmit, Schedule, At, After): delivery order
//     would differ between runs.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flag order-dependent work (float accumulation, escaping appends, event emission) " +
		"inside range-over-map loops; sort keys first or collect-then-sort",
	Run: runMaporder,
}

// eventMethods are callee names that emit events or schedule callbacks —
// order of invocation is observable simulation behaviour.
var eventMethods = map[string]bool{
	"OnAir": true, "OffAir": true, "Emit": true, "Transmit": true,
	"TransmitShaped": true, "Schedule": true, "At": true, "After": true,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Walk statement lists so a range loop can see its trailing
		// statements (the collect-then-sort exemption).
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, st := range list {
				if lab, ok := st.(*ast.LabeledStmt); ok {
					st = lab.Stmt
				}
				rng, ok := st.(*ast.RangeStmt)
				if !ok || !isMapRange(pass.TypesInfo, rng) {
					continue
				}
				checkMapRangeBody(pass, rng, list[i+1:])
			}
			return true
		})
	}
	return nil
}

func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, after []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rng, n, after)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && eventMethods[sel.Sel.Name] {
				pass.Reportf(n.Pos(),
					"%s inside range over map: event/callback order follows the randomized map order; iterate sorted keys instead",
					sel.Sel.Name)
			}
		}
		return true
	})
}

func checkAssign(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt, after []ast.Stmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if isFloatExpr(pass.TypesInfo, lhs) && !lhsLocalTo(pass.TypesInfo, lhs, rng) {
			pass.Reportf(as.Pos(),
				"floating-point accumulation into %s inside range over map: rounding makes the total depend on the randomized iteration order; sum in sorted-key order",
				exprString(lhs))
		}
	case token.ASSIGN:
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			rhs := as.Rhs[i]
			// s = append(s, ...) with s declared outside the loop.
			if isAppendTo(pass.TypesInfo, rhs, lhs) && !lhsLocalTo(pass.TypesInfo, lhs, rng) {
				if sortedAfter(pass.TypesInfo, lhs, after) {
					continue
				}
				pass.Reportf(as.Pos(),
					"append to %s inside range over map: element order follows the randomized map order; sort the result (or the keys) deterministically",
					exprString(lhs))
				continue
			}
			// x = x + delta float self-accumulation.
			if bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok &&
				(bin.Op == token.ADD || bin.Op == token.SUB) &&
				isFloatExpr(pass.TypesInfo, lhs) &&
				sameRoot(lhs, bin.X) && !lhsLocalTo(pass.TypesInfo, lhs, rng) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation into %s inside range over map: rounding makes the total depend on the randomized iteration order; sum in sorted-key order",
					exprString(lhs))
			}
		}
	}
}

// isFloatExpr reports whether the expression's (possibly named) type has
// a floating-point underlying kind — float64, phy.DBm, ...
func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// lhsLocalTo reports whether the target's root variable is declared
// inside the loop — per-iteration state cannot leak iteration order out.
func lhsLocalTo(info *types.Info, lhs ast.Expr, rng *ast.RangeStmt) bool {
	id := rootIdent(lhs)
	return id != nil && declaredWithin(info, id, rng)
}

// isAppendTo reports whether rhs is append(lhs, ...).
func isAppendTo(info *types.Info, rhs, lhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return sameRoot(lhs, call.Args[0])
}

// sameRoot reports whether two expressions share the same leftmost
// identifier object-wise (syntactic match on the root name is enough for
// the accumulation idioms this analyzer targets).
func sameRoot(a, b ast.Expr) bool {
	ra, rb := rootIdent(a), rootIdent(b)
	return ra != nil && rb != nil && ra.Name == rb.Name
}

// sortedAfter reports whether one of the statements following the loop
// (in the same block) passes the append target to a sort function — the
// sanctioned collect-then-sort idiom: the map's random order is erased
// before anyone observes it.
func sortedAfter(info *types.Info, lhs ast.Expr, after []ast.Stmt) bool {
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	for _, st := range after {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			obj := calleeObj(info, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			pkg := obj.Pkg().Path()
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			if arg := rootIdent(call.Args[0]); arg != nil && arg.Name == root.Name {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// exprString renders a (small) expression for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "expression"
}
