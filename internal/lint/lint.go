// Package lint is the project-specific static-analysis suite behind
// cmd/dcnlint. It machine-enforces the determinism and unit-safety
// invariants the simulator's golden tables depend on but that no stock
// tool checks: no wall-clock or global randomness in simulation code
// (detsource), no order-dependent work inside map iteration (maporder),
// no mixing of dBm and milliwatt quantities in arithmetic (dbmunits),
// concurrency confined to internal/parallel (confinedgo),
// constructor/Reset parity for every arena-recycled type (resetcomplete),
// every RNG seeded from the cell's (config, seed) tuple (seedtaint),
// every arena lease paired with Core.Release (leasepair), and
// topology.Snapshot immutability after construction (snapfreeze).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer owns a Run function over a type-checked Pass — but is
// built on the standard library alone (go/parser, go/types and the
// source importer), so the gate needs no module downloads.
//
// # Interprocedural analysis
//
// RunAnalyzers builds one Module over every loaded package: a
// conservative call graph (static calls exact through go/types;
// interface and function-value calls over-approximated by signature,
// pruned to the caller's import closure) plus per-function summaries
// computed to fixed point. detsource and seedtaint flag sim-package
// calls into helper chains that transitively reach a nondeterminism
// sink, printing the path; dbmunits classifies neutral-named helpers by
// their return units; leasepair treats helpers that visibly hand a
// lease through as lease sites. Summaries never propagate out of
// simulation packages (the sink is flagged there directly), the
// quarantined packages (internal/watchdog and friends use the wall
// clock by charter), or test files.
//
// # Suppression
//
// A deliberate exception to any analyzer is annotated at the offending
// line (or the line directly above it):
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; an ignore directive without one is itself
// reported, as is one naming an unknown analyzer or one that suppresses
// nothing. An interprocedural finding is suppressed at the call site it
// is reported at, and its reason must name the sink being waived
// (time.Now, rand.NewSource, Core.Release, ...) so annotations state
// what they exempt. resetcomplete additionally honours a field-level annotation:
// a struct field whose declaration carries a "//lint:keep <reason>"
// comment is deliberately retained across Reset and exempt from the
// constructor/reset parity check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. It is stateless: Run is invoked
// once per package with a fully type-checked Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports violations on the pass. Returning an error aborts the
	// whole lint run (reserved for internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the slash-separated import path of the package under
	// analysis (test variants keep the base package's path, so
	// path-scoped analyzers treat a package and its tests alike).
	Path string
	// Module is the whole-program call graph over every package in the
	// run, for the interprocedural checks. It only spans the loaded
	// packages: a partial load degrades gracefully to intra-procedural
	// analysis.
	Module *Module

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Sink, when set, names the root cause an interprocedural finding
	// bottoms out in (time.Now, rand.NewSource, Core.Release, NearRow).
	// A //lint:ignore suppressing such a finding must name the sink in
	// its reason, so annotations state what they are waiving.
	Sink string
	// CallPath is the printed helper chain of an interprocedural
	// finding, outermost callee first, for machine consumers (-json).
	CallPath []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportSink records a violation rooted in a named sink, optionally
// with the call path that reaches it. Suppressing it requires the
// //lint:ignore reason to name the sink.
func (p *Pass) reportSink(pos token.Pos, sink string, callPath []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Sink:     sink,
		CallPath: callPath,
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string // empty means the directive was malformed
	hasReason bool
	reason    string
	pos       token.Pos
	used      bool
}

// suppressor indexes the //lint:ignore directives of one package and
// filters diagnostics through them.
type suppressor struct {
	fset *token.FileSet
	// byLine maps file:line to the directive covering that line. A
	// directive covers its own line and, when it stands alone, the line
	// below it — the two places a human writes the annotation.
	byLine map[string]*ignoreDirective
	all    []*ignoreDirective
}

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	s := &suppressor{fset: fset, byLine: map[string]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				d := &ignoreDirective{pos: c.Pos()}
				fields := strings.Fields(text)
				if len(fields) > 0 {
					d.analyzers = strings.Split(fields[0], ",")
					d.hasReason = len(fields) > 1
					d.reason = strings.Join(fields[1:], " ")
				}
				s.all = append(s.all, d)
				pos := fset.Position(c.Pos())
				s.byLine[key(pos.Filename, pos.Line)] = d
				s.byLine[key(pos.Filename, pos.Line+1)] = d
			}
		}
	}
	return s
}

func key(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// filter drops suppressed diagnostics and appends a finding for every
// malformed, unknown-analyzer or unused directive, so suppressions can
// never silently rot.
func (s *suppressor) filter(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		dir := s.byLine[key(d.Pos.Filename, d.Pos.Line)]
		if dir != nil && dir.hasReason && contains(dir.analyzers, d.Analyzer) {
			dir.used = true
			if d.Sink == "" || strings.Contains(dir.reason, d.Sink) {
				continue
			}
			// The directive matches but its reason does not say what it
			// waives: keep the finding and flag the vague annotation.
			kept = append(kept, d, Diagnostic{
				Pos:      s.fset.Position(dir.pos),
				Analyzer: "lintdirective",
				Message: fmt.Sprintf("//lint:ignore %s must name the suppressed sink %q in its reason",
					d.Analyzer, d.Sink),
			})
			continue
		}
		kept = append(kept, d)
	}
	for _, dir := range s.all {
		switch {
		case len(dir.analyzers) == 0 || !dir.hasReason:
			kept = append(kept, Diagnostic{
				Pos:      s.fset.Position(dir.pos),
				Analyzer: "lintdirective",
				Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
			})
		case unknownAnalyzer(dir.analyzers) != "":
			kept = append(kept, Diagnostic{
				Pos:      s.fset.Position(dir.pos),
				Analyzer: "lintdirective",
				Message: fmt.Sprintf("//lint:ignore names unknown analyzer %q (see dcnlint -list)",
					unknownAnalyzer(dir.analyzers)),
			})
		case !dir.used:
			kept = append(kept, Diagnostic{
				Pos:      s.fset.Position(dir.pos),
				Analyzer: "lintdirective",
				Message: fmt.Sprintf("unused //lint:ignore %s: nothing was reported here",
					strings.Join(dir.analyzers, ",")),
			})
		}
	}
	return kept
}

// unknownAnalyzer returns the first name that resolves to no registered
// analyzer ("lintdirective" itself is addressable), or "".
func unknownAnalyzer(names []string) string {
	for _, name := range names {
		if name != "lintdirective" && ByName(name) == nil {
			return name
		}
	}
	return ""
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving (non-suppressed) diagnostics in file/line order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	module := newModule(pkgs)
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				Module:    module,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		all = append(all, newSuppressor(pkg.Fset, pkg.Files).filter(diags)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		if all[i].Pos.Line != all[j].Pos.Line {
			return all[i].Pos.Line < all[j].Pos.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
