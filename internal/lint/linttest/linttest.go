// Package linttest is the golden-file test harness for the dcnlint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library alone. A fixture package lives under
// testdata/src/<path>; every line expected to trigger a diagnostic
// carries a trailing comment:
//
//	total += v // want "floating-point accumulation"
//
// The quoted string is a regular expression matched against the
// diagnostic message; several "want" strings on one line expect several
// diagnostics. Any diagnostic without a matching want, and any want
// without a matching diagnostic, fails the test — so clean declarations
// in a fixture double as negative cases. Suppression directives
// (//lint:ignore) are honoured before matching, letting fixtures assert
// the suppression convention itself.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"nonortho/internal/lint"
)

var wantRe = regexp.MustCompile(`// want (.*)$`)

// Run loads the fixture packages under testdata/src in one shared
// module — so the interprocedural analyzers see helper packages' code,
// exactly as a whole-module dcnlint run does — and checks the
// analyzer's diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([]string, len(pkgPaths))
	for i, path := range pkgPaths {
		patterns[i] = "./" + path
	}
	loader := lint.NewLoader(root, "")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgPaths, err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %v: %v", a.Name, pkgPaths, err)
	}
	checkWants(t, pkgs, diags)
}

// wantKey addresses one fixture line.
type wantKey struct {
	file string
	line int
}

func checkWants(t *testing.T, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg.Fset, f, wants)
		}
	}
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		if i := matchWant(wants[key], d.Message); i >= 0 {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
			if len(wants[key]) == 0 {
				delete(wants, key)
			}
			continue
		}
		t.Errorf("unexpected diagnostic at %s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, re)
		}
	}
}

func matchWant(res []*regexp.Regexp, msg string) int {
	for i, re := range res {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}

// collectWants parses the `// want "re" ["re" ...]` comments of a file.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[wantKey][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			key := wantKey{pos.Filename, pos.Line}
			for _, lit := range splitQuoted(m[1]) {
				pat, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				wants[key] = append(wants[key], re)
			}
		}
	}
}

// splitQuoted extracts the double-quoted Go string literals of a want
// payload: `"a" "b"` -> ["a" quoted, "b" quoted].
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start:]
		// Find the closing quote, honouring backslash escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, rest[:end+1])
		s = rest[end+1:]
	}
}

// Fprint is a debugging helper: it renders diagnostics the way the
// dcnlint driver does, for fixture authoring.
func Fprint(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}
