package lint_test

import (
	"testing"

	"nonortho/internal/lint"
	"nonortho/internal/lint/linttest"
)

// Each analyzer runs over its golden fixture packages under
// testdata/src: every `// want "re"` comment must be matched by a
// diagnostic on that line, and any unmatched diagnostic fails — so the
// fixtures' clean declarations double as negative cases.

func TestDetsource(t *testing.T) {
	linttest.Run(t, lint.Detsource, "internal/detsrc", "cmdtool",
		"internal/watchdog", "internal/store")
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, lint.Maporder, "mapord")
}

func TestDeliveryfreeze(t *testing.T) {
	linttest.Run(t, lint.Deliveryfreeze, "delivfreeze")
}

func TestDbmunits(t *testing.T) {
	linttest.Run(t, lint.Dbmunits, "dbmunits")
}

func TestConfinedgo(t *testing.T) {
	linttest.Run(t, lint.Confinedgo, "internal/confgo", "internal/parallel",
		"internal/watchdog", "internal/store")
}

func TestResetcomplete(t *testing.T) {
	linttest.Run(t, lint.Resetcomplete, "resetcpl")
}

func TestSeedtaint(t *testing.T) {
	linttest.Run(t, lint.Seedtaint, "internal/seedt", "internal/sim")
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) != nil")
	}
}
