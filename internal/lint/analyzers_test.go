package lint_test

import (
	"testing"

	"nonortho/internal/lint"
	"nonortho/internal/lint/linttest"
)

// Each analyzer runs over its golden fixture packages under
// testdata/src: every `// want "re"` comment must be matched by a
// diagnostic on that line, and any unmatched diagnostic fails — so the
// fixtures' clean declarations double as negative cases.

func TestDetsource(t *testing.T) {
	linttest.Run(t, lint.Detsource, "internal/detsrc", "cmdtool",
		"internal/watchdog", "internal/store")
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, lint.Maporder, "mapord")
}

func TestDeliveryfreeze(t *testing.T) {
	linttest.Run(t, lint.Deliveryfreeze, "delivfreeze")
}

func TestDbmunits(t *testing.T) {
	linttest.Run(t, lint.Dbmunits, "dbmunits")
}

func TestConfinedgo(t *testing.T) {
	linttest.Run(t, lint.Confinedgo, "internal/confgo", "internal/parallel",
		"internal/watchdog", "internal/store")
}

func TestResetcomplete(t *testing.T) {
	linttest.Run(t, lint.Resetcomplete, "resetcpl")
}

func TestSeedtaint(t *testing.T) {
	linttest.Run(t, lint.Seedtaint, "internal/seedt", "internal/sim")
}

func TestDetsourceInterprocedural(t *testing.T) {
	linttest.Run(t, lint.Detsource, "internal/deepdet", "dethelp")
}

func TestSeedtaintInterprocedural(t *testing.T) {
	linttest.Run(t, lint.Seedtaint, "internal/deepseed", "seedhelp")
}

func TestDbmunitsSummaries(t *testing.T) {
	linttest.Run(t, lint.Dbmunits, "dbmhelp")
}

func TestLeasepair(t *testing.T) {
	linttest.Run(t, lint.Leasepair, "internal/leasefix", "internal/arena",
		"internal/testbed")
}

func TestSnapfreeze(t *testing.T) {
	linttest.Run(t, lint.Snapfreeze, "snapuse", "internal/topology")
}

// TestRegistryComplete pins the registry: adding or renaming an
// analyzer must update this list (and the README table it mirrors).
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"confinedgo", "dbmunits", "deliveryfreeze", "detsource",
		"leasepair", "maporder", "resetcomplete", "seedtaint", "snapfreeze",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d].Name = %q, want %q", i, all[i].Name, name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) != nil")
	}
}
