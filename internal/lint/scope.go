package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Simulation-package scoping. Determinism invariants bind everything
// under internal/ except the packages that are deliberately outside the
// deterministic kernel: internal/parallel (the one place concurrency
// lives), internal/prof (wall-clock profiling plumbing), this linter
// itself, and the crash-safety quarantine — internal/watchdog (the
// wall-clock stuck-cell sentry and signal relay) and internal/store
// (the durable result cache, whose file I/O never feeds back into a
// simulation). cmd/ and examples/ are drivers and UI, free to read
// clocks. Adding a package here is an API decision: it removes every
// determinism guarantee dcnlint provides for that package.
var nonSimInternal = map[string]bool{
	"parallel": true,
	"prof":     true,
	"lint":     true,
	"watchdog": true,
	"store":    true,
}

// isSimPackage reports whether the import path names a package whose
// code must be bit-deterministic. It keys on the path segment following
// "internal", so test fixtures under lint/testdata can opt in by layout.
func isSimPackage(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) {
			return !nonSimInternal[segs[i+1]]
		}
	}
	return false
}

// confinedConcurrency names the only internal packages allowed
// goroutines, WaitGroups and channels: parallel (the bounded worker
// pool cells fan out through) and watchdog (the wall-clock sentry whose
// scanner and signal-relay goroutines observe a sweep but never touch a
// simulation). Note internal/store is deliberately absent — durability
// needs no concurrency.
var confinedConcurrency = map[string]bool{
	"parallel": true,
	"watchdog": true,
}

// isConfinedPackage reports whether the path is one of the concurrency
// quarantine packages (or, in test fixtures, a stand-in laid out as
// .../internal/parallel or .../internal/watchdog).
func isConfinedPackage(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) {
			return confinedConcurrency[segs[i+1]]
		}
	}
	return false
}

// calleeObj resolves a call expression to the types.Object of its
// callee, looking through parentheses. Returns nil for indirect calls.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function (or other
// object) pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// rootIdent strips selectors, indexes and parens down to the leftmost
// identifier of an lvalue-ish expression: m.sums[i].dbm -> m.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the identifier's object is declared
// inside the given node's source extent.
func declaredWithin(info *types.Info, id *ast.Ident, n ast.Node) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}
