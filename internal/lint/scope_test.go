package lint

import "testing"

// The quarantine boundaries are security-relevant for determinism:
// these tests pin exactly which packages each analyzer family exempts,
// so widening a scope is a deliberate, reviewed diff here.
func TestScopeBoundaries(t *testing.T) {
	cases := []struct {
		path     string
		sim      bool // bound by detsource and friends
		confined bool // allowed goroutines/channels
	}{
		{"nonortho/internal/sim", true, false},
		{"nonortho/internal/experiments", true, false},
		{"nonortho/internal/cli", true, false},
		{"nonortho/internal/parallel", false, true},
		{"nonortho/internal/watchdog", false, true},
		{"nonortho/internal/store", false, false},
		{"nonortho/internal/prof", false, false},
		{"nonortho/internal/lint", false, false},
		{"nonortho/cmd/dcnsim", false, false},
		{"fixture/internal/watchdog", false, true},
		{"fixture/internal/store", false, false},
	}
	for _, c := range cases {
		if got := isSimPackage(c.path); got != c.sim {
			t.Errorf("isSimPackage(%q) = %v, want %v", c.path, got, c.sim)
		}
		if got := isConfinedPackage(c.path); got != c.confined {
			t.Errorf("isConfinedPackage(%q) = %v, want %v", c.path, got, c.confined)
		}
	}
}
