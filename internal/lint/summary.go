package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Source summaries: which nondeterminism sinks a module-local helper
// reaches, propagated to fixed point over the call graph. Summaries are
// only built for functions that are neither simulation code (a source
// there is flagged directly in the body by the intra-procedural pass, so
// callers need no second report) nor quarantined (internal/watchdog and
// friends use the wall clock by charter) nor test-only. The effect: a
// sim-package call into a helper chain is flagged once, at the sim call
// site, with the full path to the sink printed.

// srcKind distinguishes the sink families so each analyzer reports only
// its own: detsource owns the wall clock, the global math/rand state and
// unseedable rand.New; seedtaint owns unseeded source constructors.
type srcKind int

const (
	srcWallClock srcKind = iota
	srcGlobalRand
	srcUnseededNew
	srcUnseededCtor
)

// srcFact is one sink a function definitely reaches, however deep.
type srcFact struct {
	kind  srcKind
	sink  string    // e.g. "time.Now", "rand.Float64", "rand.NewSource"
	pos   token.Pos // where the sink occurs (tail of the printed path)
	chain []string  // display names of the intermediate calls below the
	// summarized function, outermost first
}

// seedNeed records that a helper constructs an RNG from caller-supplied
// input: legal in itself, but every call site must pass seed-derived
// arguments. Resolved (satisfied, lifted, or turned into a violation) at
// each call site during propagation and reporting.
type seedNeed struct {
	sink  string
	pos   token.Pos
	chain []string
}

type sourceSummary struct {
	facts    []srcFact
	needSeed *seedNeed
}

func hasFact(facts []srcFact, kind srcKind, sink string) bool {
	for _, f := range facts {
		if f.kind == kind && f.sink == sink {
			return true
		}
	}
	return false
}

// summaryCapable reports whether facts may propagate through mf: a
// module-local helper outside simulation code, the quarantine, and test
// files.
func summaryCapable(mf *modFunc) bool {
	return !mf.inTest && !isSimPackage(mf.pkg.Path) && !isQuarantinedPkg(mf.pkg.Path)
}

// sourceSummaries computes the fixed point of source facts over the
// call graph.
func (m *Module) sourceSummaries() map[*modFunc]*sourceSummary {
	if m.src != nil {
		return m.src
	}
	m.src = map[*modFunc]*sourceSummary{}
	for _, mf := range m.order {
		if summaryCapable(mf) {
			facts, need := directFacts(mf)
			m.src[mf] = &sourceSummary{facts: facts, needSeed: need}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, mf := range m.order {
			s := m.src[mf]
			if s == nil {
				continue
			}
			for _, e := range mf.edges {
				for _, callee := range e.callees {
					cs := m.src[callee]
					if cs == nil || callee == mf {
						continue
					}
					for _, f := range cs.facts {
						if !hasFact(s.facts, f.kind, f.sink) {
							nf := f
							nf.chain = prepend(callee.name, f.chain)
							s.facts = append(s.facts, nf)
							changed = true
						}
					}
					if cs.needSeed == nil {
						continue
					}
					switch {
					case anySeedDerived(e.call.Args):
						// Satisfied at this call site.
					case exprsMention(mf.pkg.Info, e.call.Args, mf.paramObjs()):
						// The obligation lifts to mf's own callers.
						if s.needSeed == nil {
							s.needSeed = &seedNeed{
								sink:  cs.needSeed.sink,
								pos:   cs.needSeed.pos,
								chain: prepend(callee.name, cs.needSeed.chain),
							}
							changed = true
						}
					default:
						// Neither seed-derived nor parameter-fed: the
						// generator is definitively unseeded inside the
						// helper chain.
						if !hasFact(s.facts, srcUnseededCtor, cs.needSeed.sink) {
							s.facts = append(s.facts, srcFact{
								kind:  srcUnseededCtor,
								sink:  cs.needSeed.sink,
								pos:   cs.needSeed.pos,
								chain: prepend(callee.name, cs.needSeed.chain),
							})
							changed = true
						}
					}
				}
			}
		}
	}
	return m.src
}

func prepend(name string, chain []string) []string {
	out := make([]string, 0, len(chain)+1)
	out = append(out, name)
	return append(out, chain...)
}

// directFacts scans one helper body for the sinks the intra-procedural
// analyzers flag in simulation code.
func directFacts(mf *modFunc) (facts []srcFact, need *seedNeed) {
	info := mf.pkg.Info
	add := func(kind srcKind, sink string, pos token.Pos) {
		if !hasFact(facts, kind, sink) {
			facts = append(facts, srcFact{kind: kind, sink: sink, pos: pos})
		}
	}
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObj(info, n)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "time" && wallClockFuncs[obj.Name()]:
				add(srcWallClock, "time."+obj.Name(), n.Pos())
			case isRandPkg(obj.Pkg().Path()) && obj.Name() == "New":
				// rand.New over a pass-through source parameter is the
				// caller's problem (checked where the source is built);
				// over anything else non-inline-seeded it is a sink.
				if !seededCall(info, n) &&
					!exprsMention(info, n.Args, mf.paramObjs()) {
					add(srcUnseededNew, "rand.New", n.Pos())
				}
			case isRandPkg(obj.Pkg().Path()) && seededSourceCtors[obj.Name()],
				obj.Name() == "NewRNG" && isSimKernelPkg(obj.Pkg().Path()):
				sink := "rand." + obj.Name()
				if obj.Name() == "NewRNG" {
					sink = "sim.NewRNG"
				}
				switch {
				case anySeedDerived(n.Args):
					// Visibly seeded: clean.
				case exprsMention(info, n.Args, mf.paramObjs()):
					if need == nil {
						need = &seedNeed{sink: sink, pos: n.Pos()}
					}
				default:
					add(srcUnseededCtor, sink, n.Pos())
				}
			}
		case *ast.SelectorExpr:
			// The global math/rand draws, same condition as detsource.
			fn, ok := info.Uses[n.Sel].(*types.Func)
			if ok && fn.Pkg() != nil && isRandPkg(fn.Pkg().Path()) &&
				!seededRandCtors[fn.Name()] && fn.Exported() &&
				fn.Type().(*types.Signature).Recv() == nil {
				add(srcGlobalRand, "rand."+fn.Name(), n.Pos())
			}
		}
		return true
	})
	return facts, need
}

// pathString renders the printed call path of a finding: the callee at
// the flagged call site, the chain below it, and the sink's location.
func pathString(fset *token.FileSet, callee *modFunc, chain []string, sink string, pos token.Pos) (string, []string) {
	elems := prepend(callee.name, chain)
	p := fset.Position(pos)
	elems = append(elems, fmt.Sprintf("%s at %s:%d", sink, filepath.Base(p.Filename), p.Line))
	return strings.Join(elems, " -> "), elems
}

// Return-unit summaries for dbmunits: the power domain of a helper's
// single result, inferred from its return expressions to fixed point, so
// a neutral-named wrapper around a dBm-named value taints arithmetic in
// its callers.
func (m *Module) unitSummaries() map[string]unit {
	if m.units != nil {
		return m.units
	}
	m.units = map[string]unit{}
	conflicted := map[string]bool{}
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, mf := range m.order {
			if mf.inTest || conflicted[mf.id] {
				continue
			}
			sig := mf.fn.Type().(*types.Signature)
			if sig.Results().Len() != 1 {
				continue
			}
			env := unitEnv{info: mf.pkg.Info, ret: m.units}
			u := unitUnknown
			conflict := false
			for _, e := range returnExprs(mf.decl) {
				ru := env.exprUnit(e)
				switch {
				case ru == unitUnknown:
				case u == unitUnknown:
					u = ru
				case u != ru:
					conflict = true
				}
			}
			if conflict {
				conflicted[mf.id] = true
				if m.units[mf.id] != unitUnknown {
					delete(m.units, mf.id)
					changed = true
				}
				continue
			}
			if u != unitUnknown && m.units[mf.id] != u {
				m.units[mf.id] = u
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return m.units
}

// returnExprs collects the single-result return expressions of the
// declaration itself, closures excluded.
func returnExprs(decl *ast.FuncDecl) []ast.Expr {
	lits := funcLitRanges(decl.Body)
	var out []ast.Expr
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 || lits.contains(ret.Pos()) {
			return true
		}
		out = append(out, ret.Results[0])
		return true
	})
	return out
}

// litRanges tracks closure extents so declaration-level walks can tell
// a function's own statements from its closures'.
type litRanges [][2]token.Pos

func funcLitRanges(body *ast.BlockStmt) litRanges {
	var r litRanges
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			r = append(r, [2]token.Pos{lit.Pos(), lit.End()})
		}
		return true
	})
	return r
}

func (r litRanges) contains(pos token.Pos) bool {
	for _, lr := range r {
		if pos >= lr[0] && pos < lr[1] {
			return true
		}
	}
	return false
}

// Lease hand-off summaries for leasepair: a function that binds a Core
// from arena.Lease/LeaseTopo (or from another hand-off helper) and
// returns it transfers the Release obligation to its callers, so its
// call sites are checked exactly like direct lease calls.
func (m *Module) leaseReturners() map[string]bool {
	if m.leaseReturn != nil {
		return m.leaseReturn
	}
	m.leaseReturn = map[string]bool{}
	var cands []*modFunc
	for _, mf := range m.order {
		if !mf.inTest && !isArenaPkg(mf.pkg.Path) && resultsIncludeCore(mf.fn) {
			cands = append(cands, mf)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, mf := range cands {
			if !m.leaseReturn[mf.id] && m.fnReturnsLease(mf) {
				m.leaseReturn[mf.id] = true
				changed = true
			}
		}
	}
	return m.leaseReturn
}

// resultsIncludeCore reports whether any result is a *Core (or Core)
// declared in an arena package.
func resultsIncludeCore(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Name() == "Core" &&
			n.Obj().Pkg() != nil && isArenaPkg(n.Obj().Pkg().Path()) {
			return true
		}
	}
	return false
}

// fnReturnsLease reports whether the body visibly binds a lease and
// returns it. A getter returning a stored field does not qualify — the
// obligation stays with whoever leased it.
func (m *Module) fnReturnsLease(mf *modFunc) bool {
	info := mf.pkg.Info
	isLeaseExpr := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		if isLeaseCall(info, call) {
			return true
		}
		fn, ok := calleeObj(info, call).(*types.Func)
		return ok && m.leaseReturn[fn.FullName()]
	}
	leased := map[types.Object]bool{}
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if isLeaseExpr(rhs) {
				if obj := info.ObjectOf(id); obj != nil {
					leased[obj] = true
				}
			}
		}
		return true
	})
	lits := funcLitRanges(mf.decl.Body)
	found := false
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || lits.contains(ret.Pos()) {
			return true
		}
		for _, res := range ret.Results {
			if isLeaseExpr(res) {
				found = true
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && leased[info.ObjectOf(id)] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isLeaseCall matches arena.Arena.Lease / LeaseTopo call expressions.
func isLeaseCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return (fn.Name() == "Lease" || fn.Name() == "LeaseTopo") &&
		isArenaPkg(fn.Pkg().Path())
}
