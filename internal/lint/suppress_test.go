package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nonortho/internal/lint"
)

// writeFixture materialises a throwaway single-file module tree and
// returns diagnostics from running the given analyzer over it.
func runOnSource(t *testing.T, a *lint.Analyzer, relDir, src string) []lint.Diagnostic {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, filepath.FromSlash(relDir))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.NewLoader(root, "").Load("./" + relDir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

// runOnTree is runOnSource for multi-package fixtures, so the
// interprocedural suppression semantics can be exercised end to end.
func runOnTree(t *testing.T, a *lint.Analyzer, files map[string]string, patterns ...string) []lint.Diagnostic {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := lint.NewLoader(root, "").Load(patterns...)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

const accumSrc = `package fix

func sum(m map[int]float64) float64 {
	t := 0.0
	for _, v := range m {
		%s
		t += v
	}
	return t
}
`

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	src := strings.Replace(accumSrc, "%s", "//lint:ignore maporder fixture reason", 1)
	if diags := runOnSource(t, lint.Maporder, "pkg", src); len(diags) != 0 {
		t.Fatalf("suppressed run reported %v", diags)
	}
}

func TestIgnoreDirectiveNeedsReason(t *testing.T) {
	src := strings.Replace(accumSrc, "%s", "//lint:ignore maporder", 1)
	diags := runOnSource(t, lint.Maporder, "pkg", src)
	// The accumulation stays reported and the bare directive is flagged.
	var sawFinding, sawMalformed bool
	for _, d := range diags {
		switch d.Analyzer {
		case "maporder":
			sawFinding = true
		case "lintdirective":
			sawMalformed = strings.Contains(d.Message, "malformed")
		}
	}
	if !sawFinding || !sawMalformed {
		t.Fatalf("want finding + malformed-directive report, got %v", diags)
	}
}

func TestIgnoreDirectiveWrongAnalyzer(t *testing.T) {
	src := strings.Replace(accumSrc, "%s", "//lint:ignore detsource not the analyzer firing here", 1)
	diags := runOnSource(t, lint.Maporder, "pkg", src)
	var sawFinding, sawUnused bool
	for _, d := range diags {
		switch d.Analyzer {
		case "maporder":
			sawFinding = true
		case "lintdirective":
			sawUnused = strings.Contains(d.Message, "unused")
		}
	}
	if !sawFinding || !sawUnused {
		t.Fatalf("want finding + unused-directive report, got %v", diags)
	}
}

func TestUnusedIgnoreReported(t *testing.T) {
	src := `package fix

//lint:ignore maporder nothing here triggers it
func clean() {}
`
	diags := runOnSource(t, lint.Maporder, "pkg", src)
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" ||
		!strings.Contains(diags[0].Message, "unused") {
		t.Fatalf("want exactly one unused-directive report, got %v", diags)
	}
}

func TestIgnoreUnknownAnalyzerReported(t *testing.T) {
	src := `package fix

//lint:ignore maporderr typo in the analyzer name
func clean() {}
`
	diags := runOnSource(t, lint.Maporder, "pkg", src)
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" ||
		!strings.Contains(diags[0].Message, "unknown analyzer") {
		t.Fatalf("want exactly one unknown-analyzer report, got %v", diags)
	}
}

const wallHelperSrc = `package helper

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`

// TestInterproceduralSuppressionAtCallSite pins where an
// interprocedural finding is suppressed: at the sim-package call site,
// with a reason naming the sink.
func TestInterproceduralSuppressionAtCallSite(t *testing.T) {
	files := map[string]string{
		"helper/helper.go": wallHelperSrc,
		"internal/simuse/simuse.go": `package simuse

import "helper"

func run() int64 {
	//lint:ignore detsource boot banner only, reaches time.Now outside any cell
	return helper.Stamp()
}
`,
	}
	diags := runOnTree(t, lint.Detsource, files, "./helper", "./internal/simuse")
	if len(diags) != 0 {
		t.Fatalf("call-site suppression failed: %v", diags)
	}
}

// TestInterproceduralSuppressionNotAtHelper is the regression for the
// attribution rule: a directive at the helper's sink line covers
// nothing, because the finding lands at the call site — the directive
// is reported unused and the finding survives.
func TestInterproceduralSuppressionNotAtHelper(t *testing.T) {
	files := map[string]string{
		"helper/helper.go": `package helper

import "time"

func Stamp() int64 {
	//lint:ignore detsource findings land at sim call sites, not at time.Now
	return time.Now().UnixNano()
}
`,
		"internal/simuse/simuse.go": `package simuse

import "helper"

func run() int64 { return helper.Stamp() }
`,
	}
	diags := runOnTree(t, lint.Detsource, files, "./helper", "./internal/simuse")
	var sawFinding, sawUnused bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "detsource" &&
			strings.Contains(d.Message, "transitively reaches time.Now"):
			sawFinding = true
		case d.Analyzer == "lintdirective" && strings.Contains(d.Message, "unused"):
			sawUnused = true
		}
	}
	if !sawFinding || !sawUnused {
		t.Fatalf("want call-site finding + unused helper directive, got %v", diags)
	}
}

// TestSuppressionMustNameSink pins the sink-in-reason rule: a matching
// directive whose reason does not name the sink keeps the finding and
// flags the vague annotation.
func TestSuppressionMustNameSink(t *testing.T) {
	files := map[string]string{
		"helper/helper.go": wallHelperSrc,
		"internal/simuse/simuse.go": `package simuse

import "helper"

func run() int64 {
	//lint:ignore detsource legacy code, do not touch
	return helper.Stamp()
}
`,
	}
	diags := runOnTree(t, lint.Detsource, files, "./helper", "./internal/simuse")
	var sawFinding, sawVague bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "detsource":
			sawFinding = true
		case d.Analyzer == "lintdirective" &&
			strings.Contains(d.Message, "must name the suppressed sink"):
			sawVague = true
		}
	}
	if !sawFinding || !sawVague {
		t.Fatalf("want kept finding + vague-reason report, got %v", diags)
	}
}
