package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nonortho/internal/lint"
)

// writeFixture materialises a throwaway single-file module tree and
// returns diagnostics from running the given analyzer over it.
func runOnSource(t *testing.T, a *lint.Analyzer, relDir, src string) []lint.Diagnostic {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, filepath.FromSlash(relDir))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.NewLoader(root, "").Load("./" + relDir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

const accumSrc = `package fix

func sum(m map[int]float64) float64 {
	t := 0.0
	for _, v := range m {
		%s
		t += v
	}
	return t
}
`

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	src := strings.Replace(accumSrc, "%s", "//lint:ignore maporder fixture reason", 1)
	if diags := runOnSource(t, lint.Maporder, "pkg", src); len(diags) != 0 {
		t.Fatalf("suppressed run reported %v", diags)
	}
}

func TestIgnoreDirectiveNeedsReason(t *testing.T) {
	src := strings.Replace(accumSrc, "%s", "//lint:ignore maporder", 1)
	diags := runOnSource(t, lint.Maporder, "pkg", src)
	// The accumulation stays reported and the bare directive is flagged.
	var sawFinding, sawMalformed bool
	for _, d := range diags {
		switch d.Analyzer {
		case "maporder":
			sawFinding = true
		case "lintdirective":
			sawMalformed = strings.Contains(d.Message, "malformed")
		}
	}
	if !sawFinding || !sawMalformed {
		t.Fatalf("want finding + malformed-directive report, got %v", diags)
	}
}

func TestIgnoreDirectiveWrongAnalyzer(t *testing.T) {
	src := strings.Replace(accumSrc, "%s", "//lint:ignore detsource not the analyzer firing here", 1)
	diags := runOnSource(t, lint.Maporder, "pkg", src)
	var sawFinding, sawUnused bool
	for _, d := range diags {
		switch d.Analyzer {
		case "maporder":
			sawFinding = true
		case "lintdirective":
			sawUnused = strings.Contains(d.Message, "unused")
		}
	}
	if !sawFinding || !sawUnused {
		t.Fatalf("want finding + unused-directive report, got %v", diags)
	}
}

func TestUnusedIgnoreReported(t *testing.T) {
	src := `package fix

//lint:ignore maporder nothing here triggers it
func clean() {}
`
	diags := runOnSource(t, lint.Maporder, "pkg", src)
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" ||
		!strings.Contains(diags[0].Message, "unused") {
		t.Fatalf("want exactly one unused-directive report, got %v", diags)
	}
}
