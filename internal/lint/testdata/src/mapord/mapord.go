// Package mapord is the maporder fixture.
package mapord

import "sort"

type emitter struct{}

func (emitter) OnAir(int)  {}
func (emitter) Record(int) {}

func floatAccumulation(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "floating-point accumulation into total"
	}
	return total
}

func selfAddAccumulation(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "floating-point accumulation into total"
	}
	return total
}

func escapingAppend(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "append to out inside range over map"
	}
	return out
}

func eventEmission(m map[int]emitter) {
	for k, e := range m {
		e.OnAir(k) // want "OnAir inside range over map"
	}
}

func intAccumulationIsFine(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition commutes exactly: order-independent
	}
	return n
}

func collectThenSortIsFine(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // sorted below: the random order is erased
	}
	sort.Ints(keys)
	return keys
}

func perEntryWorkIsFine(m map[int]*emitter) {
	for k := range m {
		delete(m, k) // delete and per-entry writes are order-independent
	}
}

func loopLocalIsFine(m map[int][]float64) float64 {
	worst := 0.0
	for _, vs := range m {
		sub := 0.0
		for _, v := range vs {
			sub += v // accumulator local to the iteration: no order leak
		}
		if sub > worst {
			worst = sub
		}
	}
	return worst
}

func suppressedAccumulation(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		//lint:ignore maporder fixture exercises the suppression convention
		total += v
	}
	return total
}
