// Package resetcpl is the resetcomplete fixture: constructor/Reset
// parity in the shapes the arena-recycled types use.
package resetcpl

// Pool misses one field in its reset path.
type Pool struct {
	seed  int64
	cache map[string]int
	slots []int
	label string // want "field Pool.label is set by constructor NewPool but never reassigned in Reset"
	gen   uint64 //lint:keep generation survives recycling so stale handles stay inert
}

func NewPool(seed int64, label string) *Pool {
	return &Pool{
		seed:  seed,
		cache: map[string]int{},
		slots: make([]int, 0, 8),
		label: label,
		gen:   1,
	}
}

// Reset covers seed directly, cache via delete, slots via its helper —
// but forgets label; gen is annotated as deliberately kept.
func (p *Pool) Reset(seed int64) {
	p.seed = seed
	for k := range p.cache {
		delete(p.cache, k)
	}
	p.trim()
}

func (p *Pool) trim() {
	p.slots = p.slots[:0]
}

// Wholesale is reset by rewriting the whole struct: every field counts.
type Wholesale struct {
	a, b int
	c    []int
}

func NewWholesale() *Wholesale {
	return &Wholesale{a: 1, b: 2, c: []int{3}}
}

func (w *Wholesale) Reinit() {
	*w = Wholesale{a: 1}
}

// NoReset has a constructor but no Reset method: out of scope.
type NoReset struct {
	x int
}

func NewNoReset() *NoReset { return &NoReset{x: 1} }
