// Package seedhelp is the interprocedural seedtaint fixture's helper
// layer: RNG constructors wrapped in module-local functions. NewRNG and
// NewRNGVia are legal in themselves — they build the generator from
// caller input — but oblige every simulation call site to pass a
// seed-derived argument. FixedRNG bakes in a constant seed: every sim
// call site is a violation.
package seedhelp

import "math/rand"

// NewRNG builds a generator from its parameter (obligation: callers
// must feed it the cell's seed).
func NewRNG(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }

// NewRNGVia forwards the obligation one more level.
func NewRNGVia(s int64) *rand.Rand { return NewRNG(s) }

// FixedRNG is definitively unseeded, however it is called.
func FixedRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }
