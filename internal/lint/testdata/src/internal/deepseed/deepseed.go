// Package deepseed is the interprocedural seedtaint fixture: simulation
// code constructing generators through seedhelp. The constructors are
// never in this package — the obligation is resolved at the call sites.
package deepseed

import "seedhelp"

type opts struct{ Seed int64 }

func good(o opts) {
	_ = seedhelp.NewRNG(o.Seed) // seed-derived argument: obligation met
}

func goodVia(o opts) {
	_ = seedhelp.NewRNGVia(o.Seed + 3)
}

func bad() {
	_ = seedhelp.NewRNG(77) // want "passes no seed-derived argument"
}

func badVia() {
	_ = seedhelp.NewRNGVia(9) // want "passes no seed-derived argument"
}

func fixed() {
	_ = seedhelp.FixedRNG() // want "transitively constructs rand.NewSource"
}
