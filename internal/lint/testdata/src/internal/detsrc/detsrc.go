// Package detsrc is a detsource fixture laid out as a simulation
// package (internal/<pkg>), so the analyzer applies.
package detsrc

import (
	"math/rand"
	"time"
)

// stream mimics the repository's sim.RNG: wrapping a seeded generator
// is the sanctioned way to produce randomness.
type stream struct {
	r *rand.Rand // using the rand.Rand TYPE is legal; only globals are not
}

func newStream(seed int64) *stream {
	return &stream{r: rand.New(rand.NewSource(seed))} // seeded: legal
}

func (s *stream) draw() float64 {
	return s.r.Float64() // method on an owned generator: legal
}

func globals() {
	_ = rand.Float64()    // want "math/rand global Float64"
	_ = rand.Intn(7)      // want "math/rand global Intn"
	rand.Seed(42)         // want "math/rand global Seed"
	f := rand.Perm        // want "math/rand global Perm"
	_ = f
}

func unseeded(src rand.Source) {
	_ = rand.New(src) // want "rand.New with a source not built inline"
}

func clocks() time.Duration {
	t := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Second)  // want "time.Sleep reads the wall clock"
	return time.Since(t)     // want "time.Since reads the wall clock"
}

func conversionsAreFine(d time.Duration) int64 {
	// Pure duration arithmetic never touches the wall clock.
	return (d + 3*time.Millisecond).Nanoseconds()
}

func suppressed() {
	//lint:ignore detsource fixture exercises the suppression convention
	_ = rand.Float64()
}
