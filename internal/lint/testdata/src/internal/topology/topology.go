// Package topology is the snapfreeze fixture stand-in for the real
// spatial tier: a CSR-backed Snapshot, its constructor (where field
// writes are legal) and a non-constructor method that mutates it (every
// write flagged).
package topology

type Snapshot struct {
	nearOff  []int32
	nearIDs  []int32
	nearLoss []float64
	n        int
}

// NewSnapshot is a constructor — its results include *Snapshot — so the
// field writes below are legal.
func NewSnapshot(n int) *Snapshot {
	s := &Snapshot{n: n}
	s.nearOff = make([]int32, n+1)
	s.nearIDs = append(s.nearIDs, 0)
	s.nearLoss = append(s.nearLoss, 0)
	return s
}

// NearRow returns the frozen CSR row views for network i. Reading
// offsets out of the fields copies values, not views: legal.
func (s *Snapshot) NearRow(i int) ([]int32, []float64) {
	lo, hi := s.nearOff[i], s.nearOff[i+1]
	return s.nearIDs[lo:hi], s.nearLoss[lo:hi]
}

// Count only reads: legal outside constructors.
func (s *Snapshot) Count() int { return s.n }

// Renumber is not a constructor: every field write is a mutation of a
// published snapshot.
func (s *Snapshot) Renumber() {
	s.n++            // want "write to topology.Snapshot field"
	s.nearIDs[0] = 1 // want "write to topology.Snapshot field"
	loss := s.nearLoss
	loss[0] = 0 // want "write to topology.Snapshot field"
}
