// Package testbed is the leasepair exemption fixture: the one package
// allowed to retain a leased Core in a struct, because the harness owns
// cell lifetime. Nothing here is flagged — a negative case proving the
// internal/testbed carve-out.
package testbed

import "internal/arena"

// TB retains a Core across calls: the harness owns cell lifetime.
type TB struct{ core *arena.Core }

func New(ar *arena.Arena, seed int64) *TB {
	core := ar.Lease(seed)
	return &TB{core: core}
}

func (tb *TB) Close() { tb.core.Release() }
