// Package leasefix is the leasepair fixture: every lease lifecycle
// shape the analyzer accepts and rejects. The clean functions double as
// negative cases — any diagnostic on them fails the test.
package leasefix

import (
	"errors"
	"internal/arena"
)

var global *arena.Core

var errNope = errors.New("boom")

type holder struct{ core *arena.Core }

func okDefer(ar *arena.Arena, seed int64) {
	core := ar.Lease(seed)
	defer core.Release()
	core.Run()
}

func okDeferTopo(ar *arena.Arena, seed int64, t *arena.Topo) {
	core := ar.LeaseTopo(seed, t)
	defer core.Release()
	core.Run()
}

func okExplicitBranches(ar *arena.Arena, seed int64, short bool) {
	core := ar.Lease(seed)
	if short {
		core.Release()
		return
	}
	core.Run()
	core.Release()
}

func okDeferClosure(ar *arena.Arena, seed int64) {
	core := ar.Lease(seed)
	defer func() {
		core.Run()
		core.Release()
	}()
}

func okAliasRelease(ar *arena.Arena, seed int64) {
	core := ar.Lease(seed)
	c2 := core
	defer c2.Release()
}

func okPanicPath(ar *arena.Arena, seed int64, n int) {
	core := ar.Lease(seed)
	if n < 0 {
		panic("negative cell count")
	}
	core.Release()
}

func okSwitch(ar *arena.Arena, seed int64, mode int) {
	core := ar.Lease(seed)
	switch mode {
	case 0:
		core.Release()
	default:
		core.Run()
		core.Release()
	}
}

func okLocalClosure(ar *arena.Arena, seed int64) {
	core := ar.Lease(seed)
	defer core.Release()
	run := func() { core.Run() }
	run()
}

func leakErrorPath(ar *arena.Arena, seed int64, fail bool) error {
	core := ar.Lease(seed)
	if fail {
		return errNope // want "does not reach Core.Release"
	}
	core.Release()
	return nil
}

func leakFallthrough(ar *arena.Arena, seed int64) {
	core := ar.Lease(seed) // want "does not reach Core.Release"
	core.Run()
}

func useAfterRelease(ar *arena.Arena, seed int64) {
	core := ar.Lease(seed)
	core.Release()
	core.Run() // want "use of leased Core after Release"
}

func doubleRelease(ar *arena.Arena, seed int64) {
	core := ar.Lease(seed)
	core.Release()
	core.Release() // want "use of leased Core after Release"
}

func directReturn(ar *arena.Arena, seed int64) *arena.Core {
	return ar.Lease(seed) // want "escapes via return"
}

func escapeReturn(ar *arena.Arena, seed int64) *arena.Core {
	core := ar.Lease(seed)
	core.Run()
	return core // want "escapes via return"
}

func escapeGlobal(ar *arena.Arena, seed int64) {
	core := ar.Lease(seed)
	global = core // want "escapes via assignment"
}

func escapeStruct(ar *arena.Arena, seed int64) holder {
	core := ar.Lease(seed)
	return holder{core: core} // want "escapes via return"
}

func escapeGoroutine(ar *arena.Arena, seed int64) {
	core := ar.Lease(seed)
	go core.Run() // want "escapes via goroutine"
}

func escapeSend(ar *arena.Arena, seed int64, ch chan *arena.Core) {
	core := ar.Lease(seed)
	ch <- core // want "escapes via channel send"
}

func discard(ar *arena.Arena, seed int64) {
	ar.Lease(seed) // want "not bound"
}

// acquire is a deliberate hand-off: the annotation names Core.Release,
// and the leaseReturners summary makes acquire's call sites lease sites.
func acquire(ar *arena.Arena, seed int64) *arena.Core {
	core := ar.Lease(seed)
	//lint:ignore leasepair handed off to the caller, which must defer Core.Release
	return core
}

func viaHelper(ar *arena.Arena, seed int64) {
	core := acquire(ar, seed)
	defer core.Release()
	core.Run()
}

func viaHelperLeak(ar *arena.Arena, seed int64) {
	core := acquire(ar, seed) // want "does not reach Core.Release"
	core.Run()
}
