// Package store is the detsource negative fixture for the durable
// result cache: laid out as internal/store, where wall-clock reads are
// legal (cache bookkeeping never feeds back into a simulation). Note
// the package stays single-threaded — it is NOT in the concurrency
// quarantine, so confinedgo runs over it too and must find nothing.
package store

import "time"

func entryAge(wrote time.Time) time.Duration {
	return time.Since(wrote) // legal here: cache metadata, not simulation state
}

func stamp() time.Time {
	return time.Now() // legal here
}
