// Package parallel is the confinedgo negative fixture: laid out as
// internal/parallel, the one package where concurrency belongs.
package parallel

import "sync"

func run(n int, fn func(int)) {
	var wg sync.WaitGroup // legal here
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Add(1)
	go func() { // legal here
		defer wg.Done()
		for i := range jobs {
			fn(i)
		}
	}()
	wg.Wait()
}
