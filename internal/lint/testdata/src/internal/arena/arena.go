// Package arena is the leasepair fixture stand-in for the real slab
// arena: just enough surface for the analyzer — Lease/LeaseTopo hand
// out a Core, Release returns it to the free list.
package arena

type Topo struct{ N int }

type Arena struct{ leased int }

type Core struct{ N int }

func (a *Arena) Lease(seed int64) *Core { a.leased++; return &Core{} }

func (a *Arena) LeaseTopo(seed int64, t *Topo) *Core { a.leased++; return &Core{N: t.N} }

func (c *Core) Release() {}

func (c *Core) Run() {}
