// Package confgo is the confinedgo fixture: a simulation-layer package
// (anything outside internal/parallel) where concurrency is forbidden.
package confgo

import "sync"

func launches() {
	go func() {}() // want "go statement outside the concurrency quarantine"
}

func fanIn() {
	var wg sync.WaitGroup // want "sync.WaitGroup outside the concurrency quarantine"
	wg.Wait()
}

func channels() {
	ch := make(chan int, 4) // want "channel creation outside the concurrency quarantine"
	close(ch)
}

func deterministicSyncIsFine() {
	var mu sync.Mutex // guarding shared pools is legal; no goroutines made
	mu.Lock()
	mu.Unlock()
	_ = sync.OnceValue(func() int { return 1 }) // memoization is legal
	_ = make([]int, 4)                          // non-channel make is legal
	_ = make(map[int]int)
}
