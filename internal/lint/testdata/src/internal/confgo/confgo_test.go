package confgo

import "sync"

// Test files may use concurrency freely: racing the suite and timing
// wall-clock overlap are legitimate test techniques.
func testOnlyConcurrency() {
	var wg sync.WaitGroup
	ch := make(chan int)
	wg.Add(1)
	go func() { ch <- 1; wg.Done() }()
	<-ch
	wg.Wait()
}
