// Package watchdog is the negative fixture for the concurrency
// quarantine: laid out as internal/watchdog, where both confinedgo
// (goroutines, channels, WaitGroup) and detsource (wall-clock reads)
// permit what every simulation package forbids — the real watchdog's
// scanner and signal relay need exactly these.
package watchdog

import (
	"sync"
	"time"
)

func scanLoop(limit time.Duration, report func(time.Duration)) func() {
	started := time.Now() // legal here: the stuck-cell sentry measures wall time
	done := make(chan struct{})
	var wg sync.WaitGroup // legal here
	wg.Add(1)
	go func() { // legal here
		defer wg.Done()
		t := time.NewTicker(limit / 4) // legal here
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				report(now.Sub(started))
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
