// Package deepdet is the interprocedural detsource fixture: simulation
// code (internal/ path) calling into dethelp helper chains. The sink is
// never in this package — the diagnostics land at the call sites, with
// the path to the sink printed.
package deepdet

import "dethelp"

func useOne() int64 {
	return dethelp.Stamp() // want "transitively reaches time.Now"
}

func useTwo() int64 {
	return dethelp.StampVia() // want "StampVia -> dethelp.Stamp -> time.Now"
}

func useRand() float64 {
	return dethelp.Jitter() // want "transitively reaches rand.Float64"
}

func clean() int64 {
	return dethelp.Pure(7) // a source-free helper: legal
}

func suppressed() int64 {
	//lint:ignore detsource boot banner only, reaches time.Now outside any cell
	return dethelp.Stamp()
}

func vagueReason() int64 {
	//lint:ignore detsource because I said so // want "must name the suppressed sink"
	return dethelp.Stamp() // want "transitively reaches time.Now"
}
