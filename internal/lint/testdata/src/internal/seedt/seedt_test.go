package seedt

import "internal/sim"

// Test files are exempt: fixed literal seeds are exactly how unit tests
// pin deterministic scenarios.
func testHelperRNG() *sim.RNG { return sim.NewRNG(7) }
