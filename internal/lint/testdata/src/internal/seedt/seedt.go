// Package seedt is a seedtaint fixture laid out as a simulation package
// (internal/<pkg>), so the analyzer applies.
package seedt

import (
	"math/rand"

	"internal/sim"
)

// opts mimics an experiment option block whose Seed field identifies the
// cell.
type opts struct{ Seed int64 }

// streamSeed mimics the kernel's name-keyed seed derivation.
func streamSeed(seed int64, name string) int64 {
	return seed ^ int64(len(name))
}

func seeded(seed int64, o opts) {
	_ = rand.NewSource(seed)                   // taint: parameter named seed
	_ = rand.New(rand.NewSource(o.Seed))       // taint: field selection
	_ = sim.NewRNG(o.Seed + 7)                 // taint anywhere in the expression
	_ = sim.NewRNG(streamSeed(seed, "medium")) // taint: callee name
	_ = sim.NewRNG(deriveSeed(o))              // taint: callee name contains seed
	for i := 0; i < 3; i++ {
		_ = sim.NewRNG(o.Seed + int64(i)) // per-stream offsets stay tied to the cell
	}
}

func deriveSeed(o opts) int64 { return o.Seed * 977 }

func untainted(x int64) {
	_ = rand.NewSource(42) // want "rand.NewSource seeded by an expression with no seed-derived input"
	_ = rand.NewSource(x)  // want "rand.NewSource seeded by an expression with no seed-derived input"
	_ = sim.NewRNG(1)      // want "sim.NewRNG seeded by an expression with no seed-derived input"
	_ = sim.NewRNG(x * 31) // want "sim.NewRNG seeded by an expression with no seed-derived input"
	for i := int64(0); i < 3; i++ {
		_ = sim.NewRNG(i) // want "sim.NewRNG seeded by an expression with no seed-derived input"
	}
}

func suppressed() {
	//lint:ignore seedtaint fixture exercises the suppression convention
	_ = sim.NewRNG(7)
}
