// Package sim is a minimal stand-in for the repository's simulation
// kernel, laid out as internal/sim so seedtaint fixtures can exercise
// the NewRNG call-site rule through a resolvable import.
package sim

// RNG mimics the kernel's seeded generator.
type RNG struct{ state int64 }

// NewRNG mirrors the kernel constructor: the seed parameter name itself
// carries the taint, so the constructor's own body stays clean.
func NewRNG(seed int64) *RNG { return &RNG{state: seed} }

// Float64 is a placeholder draw.
func (g *RNG) Float64() float64 { return float64(g.state) }
