// Package dethelp is the interprocedural detsource fixture's helper
// layer: a module-local, non-simulation package whose functions reach
// nondeterminism sinks one and two calls deep. Nothing is flagged here
// — drivers may read clocks — but the summaries built over this package
// flag the sim-package call sites in internal/deepdet.
package dethelp

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock one call deep.
func Stamp() int64 { return time.Now().UnixNano() }

// StampVia hides the wall clock two calls deep.
func StampVia() int64 { return Stamp() }

// Jitter draws from the process-global source one call deep.
func Jitter() float64 { return rand.Float64() }

// Pure is a clean helper: calling it from simulation code is legal.
func Pure(x int64) int64 { return x + 1 }
