// Package delivfreeze is the deliveryfreeze fixture: a miniature medium
// whose fan-out freezes a delivery set, with functions that do and do not
// edit the interest buckets inside the frozen window.
package delivfreeze

type medium struct {
	allIDs     []int
	bands      map[int][]int
	bandsTough map[int][]int
	scratch    [][]int
}

func (m *medium) deliverySet(f int) []int { return m.getIDScratch() }

func (m *medium) getIDScratch() []int {
	if n := len(m.scratch); n > 0 {
		s := m.scratch[n-1]
		m.scratch = m.scratch[:n-1]
		return s[:0]
	}
	return nil
}

func (m *medium) putIDScratch(s []int) { m.scratch = append(m.scratch, s) }

func (m *medium) addInterest(id, band int) {
	m.bands[band] = append(m.bands[band], id)
}

func (m *medium) dropInterest(id, band int) {}

func insertID(ids []int, id int) []int { return append(ids, id) }

// cleanFanout mutates nothing while the set is frozen: handlers may
// re-file themselves, but the freezing function does not.
func (m *medium) cleanFanout(f int, deliver func(int)) {
	ids := m.deliverySet(f)
	for _, id := range ids {
		deliver(id)
	}
	m.putIDScratch(ids)
}

// cleanRefileBeforeFreeze edits buckets before acquiring the set — the
// mutation is sequenced ahead of the freeze and is fine.
func (m *medium) cleanRefileBeforeFreeze(f, id int) {
	m.addInterest(id, f)
	ids := m.deliverySet(f)
	for _, v := range ids {
		_ = v
	}
	m.putIDScratch(ids)
}

// mutatorCallsInsideWindow re-files interests mid-fan-out.
func (m *medium) mutatorCallsInsideWindow(f, id int) {
	ids := m.deliverySet(f)
	m.addInterest(id, f)  // want "addInterest between deliverySet/getIDScratch and putIDScratch"
	m.dropInterest(id, f) // want "dropInterest between deliverySet/getIDScratch and putIDScratch"
	m.putIDScratch(ids)
}

// helperMutatorInsideWindow goes through the free function helper.
func (m *medium) helperMutatorInsideWindow(f, id int) {
	ids := m.getIDScratch()
	m.allIDs = insertID(m.allIDs, id) // want "insertID between deliverySet/getIDScratch and putIDScratch" "write to bucket field allIDs"
	m.putIDScratch(ids)
}

// bucketFieldWriteInsideWindow edits the raw bucket storage directly.
func (m *medium) bucketFieldWriteInsideWindow(f, id int) {
	ids := m.deliverySet(f)
	m.bands[f] = append(m.bands[f], id)           // want "write to bucket field bands"
	m.bandsTough[f] = append(m.bandsTough[f], id) // want "write to bucket field bandsTough"
	m.putIDScratch(ids)
}
