// Package dbmhelp is the return-unit summary fixture for dbmunits:
// neutral-named helpers whose results carry a power domain only visible
// through what they return. Without the module summaries, floor and
// margin classify as unknown and the mixes below go unflagged.
package dbmhelp

type config struct {
	floorDbm float64
	txMW     float64
}

// floor returns a dBm quantity under a unit-neutral name: only the
// return-unit summary can classify it.
func floor(cfg config) float64 { return cfg.floorDbm }

// margin forwards floor — the summary must propagate two calls deep.
func margin(cfg config) float64 { return floor(cfg) }

func budget(rxMW float64, cfg config) float64 {
	return rxMW + floor(cfg) // want "mixes mW operand rxMW"
}

func headroom(totalMW float64, cfg config) float64 {
	totalMW -= margin(cfg) // want "mixes mW operand totalMW"
	return totalMW
}

// offset is a dBm difference — a dB ratio with no absolute unit — so
// combining it with a linear value is legal.
func offset(cfg config) float64 { return floor(cfg) - floor(cfg) }

func slack(rxMW float64, cfg config) float64 {
	return rxMW + offset(cfg) // dB offsets are unit-less: not flagged
}
