// Package cmdtool is the detsource negative fixture: its path has no
// internal/<pkg> segment, so it is a driver/UI package where wall-clock
// time and ambient randomness are allowed.
package cmdtool

import (
	"math/rand"
	"time"
)

func allowedHere() time.Time {
	_ = rand.Float64() // drivers may use ambient randomness
	return time.Now()  // and read the wall clock
}
