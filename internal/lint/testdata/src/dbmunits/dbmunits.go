// Package dbmunits is the dbmunits fixture: a miniature of the
// repository's phy power conventions — a DBm named type, mW values as
// plain float64 with MW-suffixed names.
package dbmunits

import "math"

// DBm mirrors phy.DBm; the named type carries the logarithmic unit.
type DBm float64

func (p DBm) Milliwatts() float64 { return math.Pow(10, float64(p)/10) }

// FromMilliwatts mirrors phy.FromMilliwatts: the sanctioned bridge.
func FromMilliwatts(mw float64) DBm { return DBm(10 * math.Log10(mw)) }

var noiseFloorMW = DBm(-100).Milliwatts()

func mixedByType(signal DBm) float64 {
	return float64(signal) + noiseFloorMW // want "mixes dBm operand .* with noiseFloorMW"
}

func mixedByName(rssiDbm, interfMW float64) float64 {
	return rssiDbm - interfMW // want "mixes dBm operand rssiDbm .* with interfMW"
}

func mixedCompound(totalMW float64, s DBm) float64 {
	totalMW += float64(s) // want "mixes mW operand totalMW .* with"
	return totalMW
}

func mixedViaCall(s DBm, x float64) float64 {
	// Milliwatts() taints the call result linear; adding a dBm value to
	// it is the classic domain bug.
	return float64(s) + s.Milliwatts() // want "mixes dBm operand .*Milliwatts"
}

func sameDomainIsFine(a, b DBm) DBm {
	return a - b // dB offsets add in the log domain: legal
}

func linearSumIsFine(rxMW, txMW float64) float64 {
	return rxMW + txMW + noiseFloorMW // all linear: legal
}

func bridgedIsFine(a, b DBm) DBm {
	return FromMilliwatts(a.Milliwatts() + b.Milliwatts()) // explicit conversion: legal
}

func unknownOperandIsFine(thresholdDbm, margin float64) float64 {
	return thresholdDbm - margin // margin carries no unit name: not flagged
}
