// Package snapuse is the consumer-side snapfreeze fixture: NearRow
// views read, copied out of (legal), and written through directly, via
// aliases and re-slices, as append destinations and copy targets (all
// flagged).
package snapuse

import "internal/topology"

func readOnly(s *topology.Snapshot) float64 {
	ids, loss := s.NearRow(0)
	var t float64
	for i := range ids {
		t += loss[i]
	}
	return t
}

func copyOut(s *topology.Snapshot) []float64 {
	_, loss := s.NearRow(1)
	out := make([]float64, len(loss))
	copy(out, loss)
	return out
}

func mutateRow(s *topology.Snapshot) {
	_, loss := s.NearRow(2)
	loss[0] = 0 // want "writing into"
}

func mutateAlias(s *topology.Snapshot) {
	ids, _ := s.NearRow(3)
	a := ids
	a[1] = 9 // want "writing into"
}

func mutateSlice(s *topology.Snapshot) {
	_, loss := s.NearRow(4)
	sub := loss[1:]
	sub[0] = 3 // want "writing into"
}

func appendRow(s *topology.Snapshot) []int32 {
	ids, _ := s.NearRow(5)
	return append(ids, 7) // want "append to"
}

func copyInto(s *topology.Snapshot, src []float64) {
	_, loss := s.NearRow(6)
	copy(loss, src) // want "copy into"
}
