package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Resetcomplete turns the arena-recycling contract into a compile-time
// guarantee. The cross-cell arena leases recycled kernels, mediums and
// radios; a recycled object must be bit-identical to a freshly
// constructed one, which today is asserted by reset-vs-fresh equality
// tests. This analyzer enforces the structural half of that contract:
// for every type that has both a constructor (a package-level New*
// function returning it) and a Reset/Reinit method, every field the
// constructor sets must also be assigned somewhere in the reset path
// (including methods of the same type the reset calls, and wholesale
// *r = T{...} rewrites) — or carry an explicit annotation:
//
//	streams map[string]*RNG //lint:keep <why the field survives Reset>
//
// A kept field is deliberately retained across recycling (warm caches,
// identity wiring); the annotation makes that decision reviewable
// instead of implicit.
var Resetcomplete = &Analyzer{
	Name: "resetcomplete",
	Doc: "every field a constructor sets must be reassigned in the type's Reset/Reinit " +
		"path or carry a //lint:keep annotation; recycled objects must equal fresh ones",
	Run: runResetcomplete,
}

func runResetcomplete(pass *Pass) error {
	types_ := collectResetTypes(pass)
	for _, rt := range types_ {
		if len(rt.ctors) == 0 || len(rt.resets) == 0 {
			continue
		}
		ctorSet := map[string]bool{}
		for _, ctor := range rt.ctors {
			fieldsSetInCtor(pass, rt, ctor, ctorSet)
		}
		resetSet := map[string]bool{}
		for _, reset := range rt.resets {
			visited := map[*ast.FuncDecl]bool{}
			fieldsSetInReset(pass, rt, reset, resetSet, visited)
		}
		var missing []string
		for f := range ctorSet {
			if !resetSet[f] && !rt.keep[f] {
				missing = append(missing, f)
			}
		}
		sort.Strings(missing)
		for _, f := range missing {
			pos := rt.resets[0].Pos()
			if n, ok := rt.fieldPos[f]; ok {
				pos = n.Pos()
			}
			pass.Reportf(pos,
				"field %s.%s is set by constructor %s but never reassigned in %s; reset it there or annotate the field //lint:keep <reason>",
				rt.name, f, rt.ctors[0].Name.Name, rt.resets[0].Name.Name)
		}
	}
	return nil
}

// resetType gathers everything the check needs about one struct type.
type resetType struct {
	name     string
	named    *types.Named
	strct    *ast.StructType
	ctors    []*ast.FuncDecl
	resets   []*ast.FuncDecl
	methods  map[string]*ast.FuncDecl
	keep     map[string]bool
	fieldPos map[string]ast.Node
}

func collectResetTypes(pass *Pass) map[string]*resetType {
	out := map[string]*resetType{}
	get := func(name string) *resetType {
		rt := out[name]
		if rt == nil {
			rt = &resetType{
				name:     name,
				methods:  map[string]*ast.FuncDecl{},
				keep:     map[string]bool{},
				fieldPos: map[string]ast.Node{},
			}
			out[name] = rt
		}
		return rt
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					rt := get(ts.Name.Name)
					rt.strct = st
					if obj, ok := pass.TypesInfo.Defs[ts.Name]; ok {
						rt.named, _ = obj.Type().(*types.Named)
					}
					for _, fld := range st.Fields.List {
						keep := commentHasKeep(fld.Doc) || commentHasKeep(fld.Comment)
						for _, nm := range fld.Names {
							rt.fieldPos[nm.Name] = nm
							if keep {
								rt.keep[nm.Name] = true
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Recv != nil && len(d.Recv.List) == 1 {
					if tn := recvTypeName(d.Recv.List[0].Type); tn != "" {
						rt := get(tn)
						rt.methods[d.Name.Name] = d
						if d.Name.Name == "Reset" || d.Name.Name == "Reinit" {
							rt.resets = append(rt.resets, d)
						}
					}
					continue
				}
				if !strings.HasPrefix(d.Name.Name, "New") || d.Type.Results == nil {
					continue
				}
				for _, res := range d.Type.Results.List {
					if tn := recvTypeName(res.Type); tn != "" {
						get(tn).ctors = append(get(tn).ctors, d)
					}
				}
			}
		}
	}
	return out
}

func commentHasKeep(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, "//lint:keep") {
			return true
		}
	}
	return false
}

// recvTypeName unwraps *T / T to the bare local type name, or "".
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}

// isTypeExprOf reports whether the expression's static type is T or *T.
func isTypeExprOf(pass *Pass, e ast.Expr, rt *resetType) bool {
	if rt.named == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == rt.named.Obj()
}

// fieldsSetInCtor records the fields the constructor sets: keys of T
// composite literals (positional literals set the leading fields), and
// direct x.f = assignments on a T-typed value.
func fieldsSetInCtor(pass *Pass, rt *resetType, fn *ast.FuncDecl, set map[string]bool) {
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !isTypeExprOf(pass, n, rt) {
				return true
			}
			for i, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						set[id.Name] = true
					}
				} else {
					// Positional literal: element i initialises field i.
					markFieldIndex(rt, i, set)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markFieldAssign(pass, rt, lhs, set)
			}
		}
		return true
	})
}

// markFieldIndex marks the i-th declared field of the struct.
func markFieldIndex(rt *resetType, i int, set map[string]bool) {
	if rt.strct == nil {
		return
	}
	idx := 0
	for _, fld := range rt.strct.Fields.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1 // embedded
		}
		for j := 0; j < n; j++ {
			if idx == i {
				if len(fld.Names) > 0 {
					set[fld.Names[j].Name] = true
				}
				return
			}
			idx++
		}
	}
}

// markFieldAssign marks lhs when it is a field selector on a T-typed
// value (x.f = ...), or every field on a wholesale *x = T{...} rewrite.
func markFieldAssign(pass *Pass, rt *resetType, lhs ast.Expr, set map[string]bool) {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		if isTypeExprOf(pass, l.X, rt) {
			set[l.Sel.Name] = true
		}
	case *ast.StarExpr:
		// *r = T{...} (or *r = other): the whole struct is rewritten;
		// every field, named or not, is reset.
		if isTypeExprOf(pass, l.X, rt) {
			markAllFields(rt, set)
		}
	}
}

func markAllFields(rt *resetType, set map[string]bool) {
	if rt.strct == nil {
		return
	}
	for _, fld := range rt.strct.Fields.List {
		for _, nm := range fld.Names {
			set[nm.Name] = true
		}
	}
}

// fieldsSetInReset records every field the reset path assigns: direct
// assignments, delete/clear on field maps, wholesale rewrites, and —
// transitively — any method of the same type the reset calls (the
// Reset -> Start -> stopTimers chains of the Adjustor). Assignments
// inside nested function literals count too: a reset that re-arms a
// ticker whose callback maintains the field owns that field's lifecycle.
func fieldsSetInReset(pass *Pass, rt *resetType, fn *ast.FuncDecl, set map[string]bool, visited map[*ast.FuncDecl]bool) {
	if fn == nil || fn.Body == nil || visited[fn] {
		return
	}
	visited[fn] = true
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markFieldAssign(pass, rt, lhs, set)
			}
		case *ast.IncDecStmt:
			markFieldAssign(pass, rt, n.X, set)
		case *ast.CallExpr:
			// delete(x.f, k) / clear(x.f) empty a field in place.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok &&
					(b.Name() == "delete" || b.Name() == "clear") && len(n.Args) > 0 {
					if sel, ok := ast.Unparen(n.Args[0]).(*ast.SelectorExpr); ok &&
						isTypeExprOf(pass, sel.X, rt) {
						set[sel.Sel.Name] = true
					}
				}
				return true
			}
			// Method call on the same type: follow it.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
					if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
						if isRecvOf(sig.Recv().Type(), rt) {
							fieldsSetInReset(pass, rt, rt.methods[obj.Name()], set, visited)
						}
					}
				}
			}
		}
		return true
	})
}

func isRecvOf(t types.Type, rt *resetType) bool {
	if rt.named == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == rt.named.Obj()
}
