package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Leasepair enforces the arena lease lifecycle: every Core handed out by
// arena.Arena.Lease / LeaseTopo (or by a module-local helper that
// visibly passes a lease through, see Module.leaseReturners) must reach
// Core.Release on every path out of the binding scope — a defer or an
// explicit call on each branch — must not be touched after Release, and
// must not escape the leasing function through returns, globals,
// composite literals, goroutines or channel sends. internal/testbed is
// the one package allowed to retain a Core in a struct: it is the
// harness that owns cell lifetime. A deliberate hand-off (a helper that
// returns the Core for its caller to Release) is annotated at the
// return with //lint:ignore leasepair and a reason naming Core.Release;
// the helper's call sites are then checked like direct lease calls.
//
// The analysis is a per-lease abstract interpretation over the binding
// block: branch states merge conservatively (released only if released
// on all branches), loop bodies are analyzed for reports but their
// effects discarded (a release only inside a loop is not a release),
// and a path that panics is exempt from the leak check — the arena's
// own double-release panic keeps the failure loud. Test files are
// exempt: tests exercise failure paths deliberately.
var Leasepair = &Analyzer{
	Name: "leasepair",
	Doc: "require every arena.Lease/LeaseTopo Core to reach Core.Release on all paths, " +
		"forbid use after Release, and forbid Cores escaping outside internal/testbed",
	Run: runLeasepair,
}

func runLeasepair(pass *Pass) error {
	if isArenaPkg(pass.Path) {
		return nil
	}
	sc := &lpScope{
		pass:      pass,
		info:      pass.TypesInfo,
		inTestbed: isTestbedPkg(pass.Path),
	}
	if pass.Module != nil {
		sc.returners = pass.Module.leaseReturners()
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc.fd = fd
			for _, list := range allStmtLists(fd.Body) {
				sc.visitList(list)
			}
		}
	}
	return nil
}

// lpScope is the per-function context of the lease walk.
type lpScope struct {
	pass      *Pass
	info      *types.Info
	returners map[string]bool
	inTestbed bool
	fd        *ast.FuncDecl
}

// isLeaseSite matches direct arena lease calls and calls to recognized
// lease hand-off helpers.
func (sc *lpScope) isLeaseSite(call *ast.CallExpr) bool {
	if isLeaseCall(sc.info, call) {
		return true
	}
	fn, ok := calleeObj(sc.info, call).(*types.Func)
	return ok && sc.returners[fn.FullName()]
}

// allStmtLists collects every statement list in the body — blocks, case
// and comm clause bodies, closure bodies — so bindings are classified in
// the list that scopes them.
func allStmtLists(body *ast.BlockStmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			lists = append(lists, n.List)
		case *ast.CaseClause:
			lists = append(lists, n.Body)
		case *ast.CommClause:
			lists = append(lists, n.Body)
		}
		return true
	})
	return lists
}

// visitList classifies the lease sites appearing directly in each
// statement of one list (nested blocks and closures belong to their own
// lists) and tracks each bound lease through the rest of the list.
func (sc *lpScope) visitList(list []ast.Stmt) {
	for i, st := range list {
		calls := sc.shallowLeaseCalls(st)
		if len(calls) == 0 {
			continue
		}
		switch n := st.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && sc.isLeaseSite(call) {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if id.Name == "_" {
							sc.unbound(call.Pos())
						} else if obj := sc.info.ObjectOf(id); obj != nil {
							sc.trackLease(list, i, call, obj)
						}
						continue
					}
					// Leased straight into a field or element: retention
					// outside a local variable.
					if !sc.inTestbed {
						sc.pass.reportSink(n.Pos(), "Core.Release", nil,
							"leased Core escapes via assignment; bind it to a local, Release it on every path, and confine retention to internal/testbed")
					}
					continue
				}
			}
			sc.unboundAll(calls)
		case *ast.ExprStmt:
			sc.unboundAll(calls)
		case *ast.ReturnStmt:
			if !sc.inTestbed {
				for _, call := range calls {
					sc.pass.reportSink(call.Pos(), "Core.Release", nil,
						"leased Core escapes via return; the Release obligation moves to the caller — annotate a deliberate hand-off with //lint:ignore leasepair and a reason naming Core.Release")
				}
			}
		default:
			sc.unboundAll(calls)
		}
	}
}

func (sc *lpScope) unbound(pos token.Pos) {
	sc.pass.reportSink(pos, "Core.Release", nil,
		"leased Core is not bound to a variable, so Core.Release cannot be verified; bind it and defer core.Release()")
}

func (sc *lpScope) unboundAll(calls []*ast.CallExpr) {
	for _, call := range calls {
		sc.unbound(call.Pos())
	}
}

// shallowLeaseCalls finds the lease calls directly in one statement,
// not descending into nested statement lists or closures.
func (sc *lpScope) shallowLeaseCalls(st ast.Stmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && sc.isLeaseSite(call) {
			out = append(out, call)
		}
		return true
	})
	return out
}

// trackLease runs the abstract interpretation for one bound lease over
// the remainder of its list.
func (sc *lpScope) trackLease(list []ast.Stmt, i int, call *ast.CallExpr, obj types.Object) {
	tr := &lpTrack{sc: sc, objs: map[types.Object]bool{obj: true}, leasePos: call.Pos()}
	st := &lpState{}
	if !tr.scanStmts(list, i+1, st) &&
		!st.released && !st.deferred && !st.escaped {
		tr.leak(call.Pos())
	}
}

// lpState is the abstract state of one lease along one path.
type lpState struct {
	released bool
	deferred bool
	escaped  bool
}

type lpTrack struct {
	sc          *lpScope
	objs        map[types.Object]bool // the lease variable and bare aliases
	leasePos    token.Pos
	reportedUse bool
}

// scanStmts interprets list[from:]; true means every path through it
// left the list (return, panic, branch).
func (tr *lpTrack) scanStmts(list []ast.Stmt, from int, st *lpState) bool {
	for i := from; i < len(list); i++ {
		if tr.scanStmt(list[i], st) {
			return true
		}
	}
	return false
}

func (tr *lpTrack) scanStmt(s ast.Stmt, st *lpState) bool {
	switch n := s.(type) {
	case *ast.DeferStmt:
		if tr.releasesVar(n.Call) {
			st.deferred = true
			return false
		}
		tr.checkUse(n, st)
		return false
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if tr.isReleaseCall(call) {
				if st.released {
					tr.reportUse(call.Pos())
				}
				st.released = true
				return false
			}
			if obj, ok := calleeObj(tr.sc.info, call).(*types.Builtin); ok && obj.Name() == "panic" {
				return true
			}
		}
		tr.checkUse(n, st)
		tr.checkEscapeExpr(n.X, st)
		return false
	case *ast.AssignStmt:
		tr.checkUse(n, st)
		tr.handleAssign(n, st)
		return false
	case *ast.DeclStmt:
		tr.checkUse(n, st)
		tr.handleDecl(n, st)
		return false
	case *ast.ReturnStmt:
		tr.checkUse(n, st)
		if tr.usesNode(n) {
			tr.escape(n.Pos(), "return", st)
			return true
		}
		if !st.released && !st.deferred && !st.escaped {
			tr.leak(n.Pos())
		}
		return true
	case *ast.IfStmt:
		if n.Init != nil {
			tr.scanStmt(n.Init, st)
		}
		tr.checkUseExpr(n.Cond, st)
		thenSt := *st
		thenTerm := tr.scanStmts(n.Body.List, 0, &thenSt)
		elseSt := *st
		elseTerm := false
		switch e := n.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = tr.scanStmts(e.List, 0, &elseSt)
		case *ast.IfStmt:
			elseTerm = tr.scanStmt(e, &elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = elseSt
		case elseTerm:
			*st = thenSt
		default:
			st.released = thenSt.released && elseSt.released
			st.deferred = thenSt.deferred && elseSt.deferred
			st.escaped = thenSt.escaped || elseSt.escaped
		}
		return false
	case *ast.BlockStmt:
		return tr.scanStmts(n.List, 0, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return tr.scanBranches(s, st)
	case *ast.ForStmt:
		body := *st
		tr.scanStmts(n.Body.List, 0, &body)
		st.escaped = st.escaped || body.escaped
		return false
	case *ast.RangeStmt:
		tr.checkUseExpr(n.X, st)
		body := *st
		tr.scanStmts(n.Body.List, 0, &body)
		st.escaped = st.escaped || body.escaped
		return false
	case *ast.GoStmt:
		if tr.usesNode(n) {
			tr.escape(n.Pos(), "goroutine", st)
		}
		return false
	case *ast.SendStmt:
		if tr.usesNode(n) {
			tr.escape(n.Pos(), "channel send", st)
		}
		return false
	case *ast.BranchStmt:
		return true
	case *ast.LabeledStmt:
		return tr.scanStmt(n.Stmt, st)
	default:
		tr.checkUse(s, st)
		return false
	}
}

// scanBranches merges the clause bodies of a switch/type-switch/select:
// released only if released in every reachable clause, plus the
// no-clause-taken path when there is no default. A select always takes
// some branch, so it is exhaustive by construction.
func (tr *lpTrack) scanBranches(s ast.Stmt, st *lpState) bool {
	var bodies [][]ast.Stmt
	hasDefault := false
	switch n := s.(type) {
	case *ast.SwitchStmt:
		if n.Init != nil {
			tr.scanStmt(n.Init, st)
		}
		tr.checkUseExpr(n.Tag, st)
		for _, c := range n.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			bodies = append(bodies, cc.Body)
		}
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			tr.scanStmt(n.Init, st)
		}
		tr.checkUse(n.Assign, st)
		for _, c := range n.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			bodies = append(bodies, cc.Body)
		}
	case *ast.SelectStmt:
		hasDefault = len(n.Body.List) > 0
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			body := cc.Body
			if cc.Comm != nil {
				body = append([]ast.Stmt{cc.Comm}, body...)
			}
			bodies = append(bodies, body)
		}
	}
	allTerm := len(bodies) > 0
	var merged *lpState
	merge := func(bs lpState) {
		if merged == nil {
			cp := bs
			merged = &cp
			return
		}
		merged.released = merged.released && bs.released
		merged.deferred = merged.deferred && bs.deferred
		merged.escaped = merged.escaped || bs.escaped
	}
	for _, b := range bodies {
		bs := *st
		if tr.scanStmts(b, 0, &bs) {
			continue
		}
		allTerm = false
		merge(bs)
	}
	if !hasDefault {
		allTerm = false
		merge(*st)
	}
	if allTerm {
		return true
	}
	if merged != nil {
		*st = *merged
	}
	return false
}

// handleAssign propagates bare aliases to locals and reports escapes:
// a bare lease variable (or an expression capturing it in a composite
// literal) flowing anywhere that is not a local variable.
func (tr *lpTrack) handleAssign(n *ast.AssignStmt, st *lpState) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		rhs = ast.Unparen(rhs)
		if id, ok := rhs.(*ast.Ident); ok && tr.objs[tr.sc.info.ObjectOf(id)] {
			if lid, ok := n.Lhs[i].(*ast.Ident); ok {
				if lid.Name == "_" {
					continue
				}
				if tr.isLocal(lid) {
					if obj := tr.sc.info.ObjectOf(lid); obj != nil {
						tr.objs[obj] = true
					}
					continue
				}
			}
			tr.escape(n.Pos(), "assignment", st)
			continue
		}
		tr.checkCapture(rhs, n.Lhs[i], st)
	}
}

// handleDecl is handleAssign for `var x = core` declarations.
func (tr *lpTrack) handleDecl(n *ast.DeclStmt, st *lpState) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) != len(vs.Names) {
			continue
		}
		for i, v := range vs.Values {
			v = ast.Unparen(v)
			if id, ok := v.(*ast.Ident); ok && tr.objs[tr.sc.info.ObjectOf(id)] {
				if obj := tr.sc.info.ObjectOf(vs.Names[i]); obj != nil {
					tr.objs[obj] = true
				}
				continue
			}
			tr.checkCapture(v, vs.Names[i], st)
		}
	}
}

// checkCapture flags the lease variable captured by a composite literal
// anywhere, or by a closure stored somewhere non-local. A closure bound
// to a local (a cell-scoped callback) is legal.
func (tr *lpTrack) checkCapture(rhs ast.Expr, lhs ast.Expr, st *lpState) {
	if !tr.usesNode(rhs) {
		return
	}
	if tr.capturedByComposite(rhs) {
		tr.escape(rhs.Pos(), "composite literal", st)
		return
	}
	if _, isLit := ast.Unparen(rhs).(*ast.FuncLit); isLit {
		if lid, ok := lhs.(*ast.Ident); !ok || !tr.isLocal(lid) {
			tr.escape(rhs.Pos(), "closure", st)
		}
	}
}

// checkEscapeExpr flags composite-literal captures inside an expression
// statement (e.g. a call argument wrapping the Core in a struct).
func (tr *lpTrack) checkEscapeExpr(e ast.Expr, st *lpState) {
	if tr.capturedByComposite(e) {
		tr.escape(e.Pos(), "composite literal", st)
	}
}

func (tr *lpTrack) capturedByComposite(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if cl, ok := n.(*ast.CompositeLit); ok && tr.usesNode(cl) {
			found = true
		}
		return !found
	})
	return found
}

// isLocal reports whether the identifier names a variable declared
// inside the enclosing function.
func (tr *lpTrack) isLocal(id *ast.Ident) bool {
	obj := tr.sc.info.ObjectOf(id)
	return obj != nil && obj.Pos() >= tr.sc.fd.Pos() && obj.Pos() < tr.sc.fd.End()
}

// usesNode reports whether the node mentions the lease variable or an
// alias.
func (tr *lpTrack) usesNode(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && tr.objs[tr.sc.info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// isReleaseCall matches <leaseVar>.Release() on the tracked variable or
// a bare alias of it.
func (tr *lpTrack) isReleaseCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && tr.objs[tr.sc.info.ObjectOf(id)]
}

// releasesVar matches a deferred Release: defer core.Release() or a
// deferred closure whose body releases the variable.
func (tr *lpTrack) releasesVar(call *ast.CallExpr) bool {
	if tr.isReleaseCall(call) {
		return true
	}
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && tr.isReleaseCall(c) {
			found = true
		}
		return !found
	})
	return found
}

func (tr *lpTrack) checkUse(s ast.Stmt, st *lpState) {
	if st.released && !tr.reportedUse && tr.usesNode(s) {
		tr.reportUse(s.Pos())
	}
}

func (tr *lpTrack) checkUseExpr(e ast.Expr, st *lpState) {
	if e != nil && st.released && !tr.reportedUse && tr.usesNode(e) {
		tr.reportUse(e.Pos())
	}
}

func (tr *lpTrack) reportUse(pos token.Pos) {
	tr.reportedUse = true
	tr.sc.pass.reportSink(pos, "Core.Release", nil,
		"use of leased Core after Release; Core.Release must be the last touch — the arena may already have re-leased the slabs")
}

func (tr *lpTrack) escape(pos token.Pos, how string, st *lpState) {
	st.escaped = true
	if tr.sc.inTestbed {
		return
	}
	tr.sc.pass.reportSink(pos, "Core.Release", nil,
		"leased Core escapes via %s; a Core is single-cell state owned by the leasing function — Release it on every path (retention is confined to internal/testbed)", how)
}

func (tr *lpTrack) leak(pos token.Pos) {
	tr.sc.pass.reportSink(pos, "Core.Release", nil,
		"leased Core does not reach Core.Release on this path; pair every arena lease with defer core.Release() or an explicit Release on all branches")
}
