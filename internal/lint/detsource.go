package lint

import (
	"go/ast"
	"go/types"
)

// Detsource forbids nondeterministic sources — the wall clock and the
// process-global math/rand state — in simulation packages. Every result
// table the repository commits is reproduced bit-for-bit from a seed;
// one time.Now() or global rand.Float64() in a simulation path breaks
// that silently. Randomness must come from named kernel streams
// (sim.Kernel.Stream) and time from the kernel clock (sim.Kernel.Now).
//
// Flagged inside simulation packages (see isSimPackage):
//   - calls to time.Now, time.Since, time.Until, time.Sleep, time.Tick,
//     time.After, time.NewTimer, time.NewTicker, time.AfterFunc;
//   - any use of a math/rand or math/rand/v2 package-level function
//     other than the seeded constructors (New, NewSource, NewZipf,
//     NewPCG, NewChaCha8);
//   - rand.New whose source is not a direct rand.NewSource/NewPCG/
//     NewChaCha8 call — an unseeded or ambient source.
var Detsource = &Analyzer{
	Name: "detsource",
	Doc: "forbid wall-clock time and global math/rand state in simulation packages; " +
		"only named sim kernel streams may produce randomness",
	Run: runDetsource,
}

// wallClockFuncs are the time package entry points that observe or wait
// on the wall clock. Pure conversions (time.Duration arithmetic,
// time.Millisecond, ...) stay legal: sim.Time is defined in terms of them.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededRandCtors are the math/rand[/v2] package-level names that build
// an explicitly seeded generator rather than draw from the global one.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runDetsource(pass *Pass) error {
	if !isSimPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := calleeObj(pass.TypesInfo, n)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch {
				case obj.Pkg().Path() == "time" && wallClockFuncs[obj.Name()]:
					pass.Reportf(n.Pos(),
						"time.%s reads the wall clock, which breaks simulation determinism; use the kernel clock (sim.Kernel.Now / Kernel.At)",
						obj.Name())
				case isRandPkg(obj.Pkg().Path()) && obj.Name() == "New":
					if !seededCall(pass, n) {
						pass.Reportf(n.Pos(),
							"rand.New with a source not built inline by rand.NewSource is not provably seeded; derive randomness from a named kernel stream (sim.Kernel.Stream)")
					}
				}
			case *ast.SelectorExpr:
				// Catch global draws (rand.Float64, rand.Intn, rand.Perm,
				// rand.Shuffle, rand.Seed, ...) whether called or merely
				// referenced (passed as a function value). Types such as
				// rand.Rand stay legal: wrapping a seeded generator is
				// exactly what sim.RNG does.
				obj, isFunc := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if isFunc && obj.Pkg() != nil && isRandPkg(obj.Pkg().Path()) &&
					!seededRandCtors[obj.Name()] && obj.Exported() &&
					obj.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(n.Pos(),
						"math/rand global %s draws from the process-wide source, which breaks simulation determinism; use a named kernel stream (sim.Kernel.Stream)",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// seededCall reports whether the single argument of rand.New is a direct
// call to one of the seeded source constructors.
func seededCall(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObj(pass.TypesInfo, inner)
	return obj != nil && obj.Pkg() != nil && isRandPkg(obj.Pkg().Path()) &&
		seededRandCtors[obj.Name()] && obj.Name() != "New"
}
