package lint

import (
	"go/ast"
	"go/types"
)

// Detsource forbids nondeterministic sources — the wall clock and the
// process-global math/rand state — in simulation packages. Every result
// table the repository commits is reproduced bit-for-bit from a seed;
// one time.Now() or global rand.Float64() in a simulation path breaks
// that silently. Randomness must come from named kernel streams
// (sim.Kernel.Stream) and time from the kernel clock (sim.Kernel.Now).
//
// Flagged inside simulation packages (see isSimPackage):
//   - calls to time.Now, time.Since, time.Until, time.Sleep, time.Tick,
//     time.After, time.NewTimer, time.NewTicker, time.AfterFunc;
//   - any use of a math/rand or math/rand/v2 package-level function
//     other than the seeded constructors (New, NewSource, NewZipf,
//     NewPCG, NewChaCha8);
//   - rand.New whose source is not a direct rand.NewSource/NewPCG/
//     NewChaCha8 call — an unseeded or ambient source.
//
// Interprocedurally (when the whole module is loaded): a call from
// simulation code into a module-local helper chain that transitively
// reaches one of the sinks above is flagged at the call site, with the
// path printed. Facts never propagate out of simulation packages (the
// sink is flagged directly there) or out of the quarantine
// (internal/watchdog and friends use the wall clock by charter).
var Detsource = &Analyzer{
	Name: "detsource",
	Doc: "forbid wall-clock time and global math/rand state in simulation packages; " +
		"only named sim kernel streams may produce randomness",
	Run: runDetsource,
}

// wallClockFuncs are the time package entry points that observe or wait
// on the wall clock. Pure conversions (time.Duration arithmetic,
// time.Millisecond, ...) stay legal: sim.Time is defined in terms of them.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededRandCtors are the math/rand[/v2] package-level names that build
// an explicitly seeded generator rather than draw from the global one.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runDetsource(pass *Pass) error {
	if !isSimPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := calleeObj(pass.TypesInfo, n)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch {
				case obj.Pkg().Path() == "time" && wallClockFuncs[obj.Name()]:
					pass.Reportf(n.Pos(),
						"time.%s reads the wall clock, which breaks simulation determinism; use the kernel clock (sim.Kernel.Now / Kernel.At)",
						obj.Name())
				case isRandPkg(obj.Pkg().Path()) && obj.Name() == "New":
					if !seededCall(pass.TypesInfo, n) {
						pass.Reportf(n.Pos(),
							"rand.New with a source not built inline by rand.NewSource is not provably seeded; derive randomness from a named kernel stream (sim.Kernel.Stream)")
					}
				}
			case *ast.SelectorExpr:
				// Catch global draws (rand.Float64, rand.Intn, rand.Perm,
				// rand.Shuffle, rand.Seed, ...) whether called or merely
				// referenced (passed as a function value). Types such as
				// rand.Rand stay legal: wrapping a seeded generator is
				// exactly what sim.RNG does.
				obj, isFunc := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if isFunc && obj.Pkg() != nil && isRandPkg(obj.Pkg().Path()) &&
					!seededRandCtors[obj.Name()] && obj.Exported() &&
					obj.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(n.Pos(),
						"math/rand global %s draws from the process-wide source, which breaks simulation determinism; use a named kernel stream (sim.Kernel.Stream)",
						obj.Name())
				}
			}
			return true
		})
	}
	reportTransitiveSources(pass, map[srcKind]bool{
		srcWallClock: true, srcGlobalRand: true, srcUnseededNew: true,
	}, false)
	return nil
}

// reportTransitiveSources flags calls out of this (simulation) package
// into module-local helper chains whose summaries carry facts of the
// given kinds, attributing each finding to the call site with the path
// to the sink. Shared by detsource and seedtaint, which own disjoint
// fact kinds.
func reportTransitiveSources(pass *Pass, kinds map[srcKind]bool, skipTests bool) {
	if pass.Module == nil {
		return
	}
	summaries := pass.Module.sourceSummaries()
	for _, f := range pass.Files {
		if skipTests && pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mf := pass.Module.funcOf(pass.TypesInfo, fd)
			if mf == nil {
				continue
			}
			for _, e := range mf.edges {
				seen := map[string]bool{}
				for _, callee := range e.callees {
					cs := summaries[callee]
					if cs == nil {
						continue
					}
					for _, fact := range cs.facts {
						if !kinds[fact.kind] || seen[fact.sink] {
							continue
						}
						seen[fact.sink] = true
						path, elems := pathString(pass.Fset, callee, fact.chain, fact.sink, fact.pos)
						switch fact.kind {
						case srcUnseededCtor:
							pass.reportSink(e.call.Pos(), fact.sink, elems,
								"call to %s transitively constructs %s with no seed-derived input (path: %s); thread the cell's (config, seed) tuple through the helper",
								callee.name, fact.sink, path)
						default:
							pass.reportSink(e.call.Pos(), fact.sink, elems,
								"call to %s transitively reaches %s, which breaks simulation determinism (path: %s); use the kernel clock (sim.Kernel.Now) or a named kernel stream (sim.Kernel.Stream)",
								callee.name, fact.sink, path)
						}
					}
					if kinds[srcUnseededCtor] && cs.needSeed != nil &&
						!seen[cs.needSeed.sink] && !anySeedDerived(e.call.Args) {
						// At the simulation boundary the seed obligation
						// must be met visibly: an argument spelled from
						// the cell's seed.
						seen[cs.needSeed.sink] = true
						need := cs.needSeed
						path, elems := pathString(pass.Fset, callee, need.chain, need.sink, need.pos)
						pass.reportSink(e.call.Pos(), need.sink, elems,
							"%s builds a generator from caller input via %s, but this call passes no seed-derived argument (path: %s); pass the cell's (config, seed) tuple",
							callee.name, need.sink, path)
					}
				}
			}
		}
	}
}

// seededCall reports whether the single argument of rand.New is a direct
// call to one of the seeded source constructors.
func seededCall(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObj(info, inner)
	return obj != nil && obj.Pkg() != nil && isRandPkg(obj.Pkg().Path()) &&
		seededRandCtors[obj.Name()] && obj.Name() != "New"
}
