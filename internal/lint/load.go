package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the slash-separated import path. Test variants (in-package
	// test files, external _test packages) keep the base path so
	// path-scoped analyzers treat them like the package itself.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages of one module from source, with no
// dependency on export data or the network: module-internal imports are
// resolved recursively from the tree, everything else through the
// standard library's source importer (which reads GOROOT source).
type Loader struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string // module path from go.mod ("" = bare tree, linttest)
	std     types.Importer
	// plain caches the import-facing variant of each module package
	// (no test files), so the import graph matches what go build links.
	plain map[string]*types.Package
}

// NewLoader returns a loader rooted at dir. With modPath == "" every
// import that resolves to a directory under root is loaded from there
// (the linttest layout); otherwise only imports under modPath are.
func NewLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		plain:   map[string]*types.Package{},
	}
}

// NewModuleLoader locates the enclosing module (walking up from dir to
// the go.mod) and returns a loader for it.
func NewModuleLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			modPath := modulePath(data)
			if modPath == "" {
				return nil, fmt.Errorf("%s/go.mod: no module directive", root)
			}
			return NewLoader(root, modPath), nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", dir)
		}
		root = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import implements types.Importer for the type-checker: module packages
// come from source (plain variant, no test files), the rest from GOROOT.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.plain[path]; ok {
		return p, nil
	}
	if dir, ok := l.dirFor(path); ok {
		lib, _, _, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		pkg, _, err := l.check(path, lib)
		if err != nil {
			return nil, err
		}
		l.plain[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps an import path to a directory under the module root, or
// reports that the path is not module-local.
func (l *Loader) dirFor(path string) (string, bool) {
	rel := ""
	switch {
	case l.modPath == "":
		rel = path
	case path == l.modPath:
		rel = "."
	case strings.HasPrefix(path, l.modPath+"/"):
		rel = strings.TrimPrefix(path, l.modPath+"/")
	default:
		return "", false
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return "", false
	}
	return dir, true
}

// parseDir parses the directory's buildable Go files into the library
// files, in-package test files, and external (_test package) test files.
// Build constraints are honoured against the default build context, so a
// //go:build race file is excluded exactly as it is from a normal build.
func (l *Loader) parseDir(dir string) (lib, intest, xtest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	ctx := build.Default
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := ctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			lib = append(lib, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			xtest = append(xtest, f)
		default:
			intest = append(intest, f)
		}
	}
	return lib, intest, xtest, nil
}

// check type-checks one file set as the package at path.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Load expands the patterns ("./...", "./internal/medium", ...) relative
// to the module root and returns every matched package fully
// type-checked for analysis: the package augmented with its in-package
// test files, plus (separately) its external _test package when one
// exists. Both variants carry the base import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path := l.pathFor(dir)
		lib, intest, xtest, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if len(lib)+len(intest) > 0 {
			files := append(append([]*ast.File{}, lib...), intest...)
			tpkg, info, err := l.check(path, files)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			pkgs = append(pkgs, &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info})
		}
		if len(xtest) > 0 {
			tpkg, info, err := l.check(path+"_test", xtest)
			if err != nil {
				return nil, fmt.Errorf("%s [xtest]: %w", path, err)
			}
			pkgs = append(pkgs, &Package{Path: path, Fset: l.fset, Files: xtest, Types: tpkg, Info: info})
		}
	}
	return pkgs, nil
}

// pathFor maps a directory under the module root to its import path.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	rel = filepath.ToSlash(rel)
	if l.modPath == "" {
		return rel
	}
	return l.modPath + "/" + rel
}

// expand resolves package patterns to package directories. "dir/..."
// walks recursively; anything else names a single directory. testdata
// trees and hidden directories are skipped, matching go's own pattern
// expansion.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
