package lint

import (
	"go/ast"
	"go/types"
)

// Confinedgo keeps the deterministic kernel single-threaded by
// construction: goroutine launches, sync.WaitGroup fan-in and channel
// creation are allowed only inside the concurrency quarantine —
// internal/parallel (the bounded worker pool that fans whole simulation
// cells out and joins their results back in cell order) and
// internal/watchdog (the wall-clock stuck-cell sentry and signal relay,
// which observe a sweep but never feed back into it) — and in _test.go
// files (tests may race the suite or time wall-clock overlap).
// Everywhere else a `go` statement would let scheduler timing perturb
// event order.
//
// sync.Mutex and sync.OnceValue stay legal: guarding a pool that the
// parallel engine's workers share (internal/arena) and memoizing
// immutable snapshots are deterministic uses that create no goroutines.
var Confinedgo = &Analyzer{
	Name: "confinedgo",
	Doc: "forbid go statements, sync.WaitGroup and channel creation outside " +
		"internal/parallel and internal/watchdog (and _test.go files); the simulation kernel is single-threaded",
	Run: runConfinedgo,
}

func runConfinedgo(pass *Pass) error {
	if isConfinedPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement outside the concurrency quarantine (internal/parallel, internal/watchdog): concurrency in simulation code makes event order scheduler-dependent; fan work out through parallel.Run")
			case *ast.SelectorExpr:
				if obj, ok := pass.TypesInfo.Uses[n.Sel].(*types.TypeName); ok &&
					obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
					pass.Reportf(n.Pos(),
						"sync.WaitGroup outside the concurrency quarantine (internal/parallel, internal/watchdog): goroutine fan-in belongs to the bounded worker pool (parallel.Run)")
				}
			case *ast.CallExpr:
				if isMakeChan(pass.TypesInfo, n) {
					pass.Reportf(n.Pos(),
						"channel creation outside the concurrency quarantine (internal/parallel, internal/watchdog): channels imply concurrent producers, which the deterministic kernel forbids")
				}
			}
			return true
		})
	}
	return nil
}

// isMakeChan reports whether the call is make(chan ...).
func isMakeChan(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
